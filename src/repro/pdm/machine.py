"""The parallel disk machine: D disks, block size B, memory M, P CPUs.

Model rules enforced here (everything the lower bounds of [AgV]/[ViSb]
assume):

* one parallel I/O moves at most one block per disk
  (:class:`~repro.exceptions.DiskContentionError` otherwise);
* every transferred block holds exactly ``B`` records;
* internal memory never holds more than ``M`` records (a ledger that
  algorithms check blocks in and out of);
* parameters satisfy ``M < N`` is the caller's business, but ``1 ≤ DB ≤
  M/2`` and ``1 ≤ P ≤ M`` are validated at construction (Section 1).

Disks are unbounded collections of B-record blocks addressed by
``(disk, slot)``; the machine never interprets record contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import (
    AddressError,
    CapacityError,
    DiskContentionError,
    ParameterError,
)
from ..pram.machine import PRAM, Variant
from ..records import RECORD_DTYPE

__all__ = ["BlockAddress", "IOStats", "ParallelDiskMachine"]


@dataclass(frozen=True)
class BlockAddress:
    """Physical address of one block: which disk, which slot on it."""

    disk: int
    slot: int


@dataclass
class IOStats:
    """I/O counters: the paper's primary performance measure.

    ``full_width_writes`` counts write I/Os that touched *every* disk —
    full-stripe writes, the pattern Section 6 highlights as friendly to
    error-checking/correcting protocols (a parity block can be computed
    over a full stripe without read-modify-write).
    """

    read_ios: int = 0
    write_ios: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    full_width_writes: int = 0

    @property
    def total_ios(self) -> int:
        """Parallel I/O operations performed (reads + writes)."""
        return self.read_ios + self.write_ios

    @property
    def write_width_fraction(self) -> float:
        """Fraction of write I/Os that were full stripes."""
        return self.full_width_writes / self.write_ios if self.write_ios else 1.0

    def snapshot(self) -> dict:
        """Current counters as a plain dict (for reporting).

        Keys mirror the counters exported by an attached metrics scope
        (:meth:`ParallelDiskMachine.attach_obs`) plus the derived
        ``write_width_fraction`` — the Section-6 full-stripe metric.
        """
        return {
            "read_ios": self.read_ios,
            "write_ios": self.write_ios,
            "total_ios": self.total_ios,
            "blocks_read": self.blocks_read,
            "blocks_written": self.blocks_written,
            "full_width_writes": self.full_width_writes,
            "write_width_fraction": self.write_width_fraction,
        }


class ParallelDiskMachine:
    """Simulator for the parallel disk model of Figure 2.

    Parameters
    ----------
    memory:
        ``M``, number of records that fit in internal memory.
    block:
        ``B``, records per block.
    disks:
        ``D``, number of independent disks.
    processors:
        ``P``, number of internal CPUs (metered by an attached PRAM).
    pram_variant:
        Concurrency discipline of the interconnect ("EREW"/"CREW"/"CRCW").
    """

    def __init__(
        self,
        memory: int,
        block: int,
        disks: int,
        processors: int = 1,
        pram_variant: str | Variant = Variant.EREW,
    ) -> None:
        if block < 1 or disks < 1:
            raise ParameterError(f"need B >= 1 and D >= 1, got B={block}, D={disks}")
        if disks * block > memory // 2:
            raise ParameterError(
                f"model requires D·B <= M/2 (got D·B={disks * block}, M={memory})"
            )
        if not 1 <= processors <= memory:
            raise ParameterError(f"model requires 1 <= P <= M (got P={processors}, M={memory})")
        self.M = int(memory)
        self.B = int(block)
        self.D = int(disks)
        self.P = int(processors)
        self.cpu = PRAM(processors, pram_variant)
        self.stats = IOStats()
        self._disks: list[dict[int, np.ndarray]] = [dict() for _ in range(self.D)]
        self._mem_used = 0
        self._alloc_ptr = 0
        # Observability (optional; None keeps the hot path untouched).
        self._obs = None
        self._obs_scope = None
        self._m_read = self._m_write = None

    # ---------------------------------------------------------- observability

    def attach_obs(self, obs, scope: str = "pdm") -> None:
        """Attach an :class:`~repro.obs.Observation` to this machine.

        Every parallel I/O then increments counters and the stripe-width
        histograms under ``obs.scope(scope)`` (names mirror
        :meth:`IOStats.snapshot`) and emits an ``io.read`` / ``io.write``
        trace event carrying the stripe width.  With no observation
        attached (the default) the I/O path performs one ``is not None``
        check and nothing else — counted I/Os are bit-identical either way.
        """
        self._obs = obs
        self._obs_scope = obs.scope(scope)
        self._m_read = (
            self._obs_scope.counter("read_ios"),
            self._obs_scope.counter("blocks_read"),
            self._obs_scope.histogram("io.read.width"),
        )
        self._m_write = (
            self._obs_scope.counter("write_ios"),
            self._obs_scope.counter("blocks_written"),
            self._obs_scope.counter("full_width_writes"),
            self._obs_scope.histogram("io.write.width"),
        )
        self.cpu.attach_obs(obs, scope=f"{scope}.cpu")

    def detach_obs(self) -> None:
        """Remove the attached observation (hooks become no-ops again)."""
        self._obs = self._obs_scope = None
        self._m_read = self._m_write = None
        self.cpu.detach_obs()

    def _observe_read(self, width: int) -> None:
        ios, blocks, hist = self._m_read
        ios.inc()
        blocks.inc(width)
        hist.observe(width)
        self._obs.event("io.read", width=width)

    def _observe_write(self, width: int) -> None:
        ios, blocks, full, hist = self._m_write
        ios.inc()
        blocks.inc(width)
        if width == self.D:
            full.inc()
        hist.observe(width)
        self._obs.event("io.write", width=width, full_stripe=width == self.D)

    # ------------------------------------------------------------------ I/O

    def read_blocks(self, addresses: Sequence[BlockAddress]) -> list[np.ndarray]:
        """One parallel read I/O: fetch one block from each addressed disk.

        Raises :class:`DiskContentionError` if two addresses share a disk,
        and :class:`CapacityError` if memory cannot hold the fetched records.
        """
        addresses = list(addresses)
        if not addresses:
            return []
        self._check_contention(addresses)
        blocks = []
        for addr in addresses:
            store = self._disk_store(addr)
            if addr.slot not in store:
                raise AddressError(f"read of unwritten block {addr}")
            blocks.append(store[addr.slot].copy())
        self.mem_acquire(len(addresses) * self.B)
        self.stats.read_ios += 1
        self.stats.blocks_read += len(addresses)
        if self._obs is not None:
            self._observe_read(len(addresses))
        return blocks

    def write_blocks(self, writes: Sequence[tuple[BlockAddress, np.ndarray]]) -> None:
        """One parallel write I/O: store one block on each addressed disk.

        The written records leave internal memory (the ledger is released).
        Blocks must contain exactly ``B`` records of the record dtype.
        """
        writes = list(writes)
        if not writes:
            return
        self._check_contention([addr for addr, _ in writes])
        for addr, data in writes:
            if data.dtype != RECORD_DTYPE:
                raise TypeError(f"blocks must have record dtype, got {data.dtype}")
            if data.shape != (self.B,):
                raise AddressError(
                    f"block must hold exactly B={self.B} records, got shape {data.shape}"
                )
            self._disk_store(addr)[addr.slot] = data.copy()
        self.mem_release(len(writes) * self.B)
        self.stats.write_ios += 1
        self.stats.blocks_written += len(writes)
        if len(writes) == self.D:
            self.stats.full_width_writes += 1
        if self._obs is not None:
            self._observe_write(len(writes))

    def _check_contention(self, addresses: Iterable[BlockAddress]) -> None:
        seen: set[int] = set()
        for addr in addresses:
            if addr.disk in seen:
                raise DiskContentionError(
                    f"two blocks addressed to disk {addr.disk} in one I/O"
                )
            seen.add(addr.disk)

    def _disk_store(self, addr: BlockAddress) -> dict[int, np.ndarray]:
        if not 0 <= addr.disk < self.D:
            raise AddressError(f"disk {addr.disk} out of range [0, {self.D})")
        if addr.slot < 0:
            raise AddressError(f"negative slot in {addr}")
        return self._disks[addr.disk]

    def peek_block(self, addr: BlockAddress) -> np.ndarray:
        """Inspect a block without an I/O (for tests/validators only)."""
        store = self._disk_store(addr)
        if addr.slot not in store:
            raise AddressError(f"peek of unwritten block {addr}")
        return store[addr.slot].copy()

    def free_block(self, addr: BlockAddress) -> None:
        """Drop a block from a disk (reclaims simulator memory, no I/O cost)."""
        store = self._disk_store(addr)
        store.pop(addr.slot, None)

    # ------------------------------------------------------- memory ledger

    @property
    def memory_in_use(self) -> int:
        """Records currently checked out of the ledger (held in memory)."""
        return self._mem_used

    @property
    def memory_free(self) -> int:
        return self.M - self._mem_used

    def mem_acquire(self, n_records: int) -> None:
        """Claim internal memory for ``n_records``; raises on overflow."""
        if n_records < 0:
            raise ParameterError("cannot acquire negative memory")
        if self._mem_used + n_records > self.M:
            raise CapacityError(
                f"memory overflow: {self._mem_used} + {n_records} > M={self.M}"
            )
        self._mem_used += n_records

    def mem_release(self, n_records: int) -> None:
        """Return ``n_records`` of internal memory to the ledger."""
        if n_records < 0:
            raise ParameterError("cannot release negative memory")
        if n_records > self._mem_used:
            raise CapacityError(
                f"memory underflow: releasing {n_records} with only {self._mem_used} in use"
            )
        self._mem_used -= n_records

    # -------------------------------------------------------------- misc

    def next_free_slot(self, disk: int) -> int:
        """Smallest unused slot index on ``disk`` (simple allocator)."""
        store = self._disks[disk]
        return max(store.keys(), default=-1) + 1

    def allocate_slots(self, n_slots: int) -> int:
        """Reserve ``n_slots`` consecutive slots on every disk (bump allocator).

        Returns the starting slot.  Keeps independently created files and
        regions from overlapping on the simulated disks.
        """
        if n_slots < 0:
            raise ParameterError("cannot allocate negative slots")
        start = self._alloc_ptr
        self._alloc_ptr += n_slots
        return start

    def reset_stats(self) -> None:
        """Zero the I/O and CPU counters (between experiment phases).

        Also resets the attached metrics scope (if any), so compare-style
        multi-phase runs report clean per-phase numbers from both the
        ``IOStats`` snapshot and the registry export.  ``_alloc_ptr`` (the
        disk slot bump allocator) is *intentionally preserved*: resetting
        counters must not let a later phase overwrite an earlier phase's
        resident blocks.
        """
        self.stats = IOStats()
        self.cpu.reset()
        if self._obs_scope is not None:
            self._obs_scope.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelDiskMachine(M={self.M}, B={self.B}, D={self.D}, P={self.P}, "
            f"ios={self.stats.total_ios})"
        )
