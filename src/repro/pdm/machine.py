"""The parallel disk machine: D disks, block size B, memory M, P CPUs.

Model rules enforced here (everything the lower bounds of [AgV]/[ViSb]
assume):

* one parallel I/O moves at most one block per disk
  (:class:`~repro.exceptions.DiskContentionError` otherwise);
* every transferred block holds exactly ``B`` records;
* internal memory never holds more than ``M`` records (a ledger that
  algorithms check blocks in and out of);
* parameters satisfy ``M < N`` is the caller's business, but ``1 ≤ DB ≤
  M/2`` and ``1 ≤ P ≤ M`` are validated at construction (Section 1).

Disks are unbounded collections of B-record blocks addressed by
``(disk, slot)``; the machine never interprets record contents.

Storage substrate
-----------------
Block bytes live in a pluggable backend (:mod:`repro.pdm.store`): the
default slab-allocated arena, or the legacy dict-of-dicts reference
backend under ``REPRO_PDM_STORE=dict``.  The paper's cost model only
counts parallel I/Os, so the substrate is free to be as fast as the
hardware allows — both backends are pinned bit-identical by the
differential suite.  The **batched entry points**
:meth:`ParallelDiskMachine.read_blocks_arr` /
:meth:`~ParallelDiskMachine.write_blocks_arr` move one ``(k, B)`` record
matrix per parallel I/O with a single vectorized gather/scatter; the
classic :class:`BlockAddress`-list API is a thin shim over them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import (
    AddressError,
    CapacityError,
    DiskContentionError,
    ParameterError,
)
from ..pram.machine import PRAM, Variant
from ..records import RECORD_DTYPE, concat_records
from ..resilience.injector import active_fault_injector
from .store import make_store

__all__ = ["BlockAddress", "IOPlanStats", "IOStats", "ParallelDiskMachine"]

#: Default rounds per fused flush/gather when an I/O plan is active.
_PLAN_WINDOW_DEFAULT = 64


def _env_io_plan_window() -> int:
    """Plan window from ``$REPRO_IO_PLAN``: rounds per fused flush.

    Unset / ``auto`` / ``on`` select the default window; ``0`` / ``off`` /
    ``no`` / ``false`` disable plans entirely (exact round-at-a-time
    execution); any other integer is used literally (``1`` keeps the plan
    machinery active but flushes after every round — a debugging mode).
    """
    raw = os.environ.get("REPRO_IO_PLAN", "").strip().lower()
    if raw in ("", "auto", "on"):
        return _PLAN_WINDOW_DEFAULT
    if raw in ("off", "no", "false"):
        return 0
    try:
        window = int(raw)
    except ValueError:
        raise ParameterError(
            f"REPRO_IO_PLAN must be an integer or off/auto, got {raw!r}"
        ) from None
    return max(0, window)


@dataclass(frozen=True, slots=True)
class BlockAddress:
    """Physical address of one block: which disk, which slot on it."""

    disk: int
    slot: int


@dataclass
class IOStats:
    """I/O counters: the paper's primary performance measure.

    ``full_width_writes`` counts write I/Os that touched *every* disk —
    full-stripe writes, the pattern Section 6 highlights as friendly to
    error-checking/correcting protocols (a parity block can be computed
    over a full stripe without read-modify-write).
    """

    read_ios: int = 0
    write_ios: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    full_width_writes: int = 0

    @property
    def total_ios(self) -> int:
        """Parallel I/O operations performed (reads + writes)."""
        return self.read_ios + self.write_ios

    @property
    def write_width_fraction(self) -> float:
        """Fraction of write I/Os that were full stripes.

        With no write I/Os at all the fraction is **0.0**: an empty run
        has demonstrated no full-stripe behaviour, so it must not report
        a perfect score.  (Earlier versions returned 1.0 here.)
        """
        return self.full_width_writes / self.write_ios if self.write_ios else 0.0

    def snapshot(self) -> dict:
        """Current counters as a plain dict (for reporting).

        Keys mirror the counters exported by an attached metrics scope
        (:meth:`ParallelDiskMachine.attach_obs`) plus the derived
        ``write_width_fraction`` — the Section-6 full-stripe metric.
        """
        return {
            "read_ios": self.read_ios,
            "write_ios": self.write_ios,
            "total_ios": self.total_ios,
            "blocks_read": self.blocks_read,
            "blocks_written": self.blocks_written,
            "full_width_writes": self.full_width_writes,
            "write_width_fraction": self.write_width_fraction,
        }


@dataclass
class IOPlanStats:
    """Physical plan-execution counters (wall-clock telemetry only).

    Deliberately **not** part of any payload, span, metric, or trace
    event: exec payloads must stay a pure function of ``(task, params)``
    regardless of how rounds are physically fused (``REPRO_IO_PLAN``,
    fault injectors and checksums all change the fusion), so plan shape
    is reported out of band — ``machine.plan_stats`` and the
    ``repro sort`` CLI summary line.
    """

    deferred_write_rounds: int = 0
    write_flushes: int = 0
    max_write_flush_blocks: int = 0
    prefetched_read_rounds: int = 0
    read_gathers: int = 0
    max_read_gather_blocks: int = 0

    def snapshot(self) -> dict:
        """Current counters as a plain dict (CLI/telemetry reporting)."""
        return {
            "deferred_write_rounds": self.deferred_write_rounds,
            "write_flushes": self.write_flushes,
            "max_write_flush_blocks": self.max_write_flush_blocks,
            "prefetched_read_rounds": self.prefetched_read_rounds,
            "read_gathers": self.read_gathers,
            "max_read_gather_blocks": self.max_read_gather_blocks,
        }


#: Plan counters that add across machines/cells vs. high-water marks.
_PLAN_SUM_KEYS = (
    "deferred_write_rounds", "write_flushes",
    "prefetched_read_rounds", "read_gathers",
)
_PLAN_MAX_KEYS = ("max_write_flush_blocks", "max_read_gather_blocks")


def merge_plan_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold :meth:`IOPlanStats.snapshot` dicts: counters add, maxima max.

    Used to aggregate physical-fusion telemetry across the machines of
    one grid cell and across the cells of a sweep — still strictly out
    of band (the result feeds stderr summaries and ``--stats-json``,
    never a payload).
    """
    out = {k: 0 for k in _PLAN_SUM_KEYS + _PLAN_MAX_KEYS}
    for snap in snapshots:
        for k in _PLAN_SUM_KEYS:
            out[k] += int(snap.get(k, 0))
        for k in _PLAN_MAX_KEYS:
            out[k] = max(out[k], int(snap.get(k, 0)))
    return out


#: Ambient (per-process) collector: when active, every machine created
#: registers its ``plan_stats`` here so callers outside the task boundary
#: can aggregate physical-fusion telemetry without touching payloads.
_PLAN_COLLECTOR: list | None = None


@contextmanager
def collect_plan_stats():
    """Collect the ``IOPlanStats`` of every machine built in this context.

    Yields the live list; snapshot after the block (e.g. through
    :func:`merge_plan_snapshots`).  Nestable — an inner collector
    shadows the outer one, mirroring how each sweep cell owns exactly
    the machines its task constructs.
    """
    global _PLAN_COLLECTOR
    prev, _PLAN_COLLECTOR = _PLAN_COLLECTOR, []
    try:
        yield _PLAN_COLLECTOR
    finally:
        _PLAN_COLLECTOR = prev


#: Memory gauges that add across machines/cells vs. high-water marks.
_MEM_SUM_KEYS = ("machines", "grow_events")
_MEM_MAX_KEYS = (
    "slab_rows", "slab_bytes", "resident_blocks", "high_water_blocks",
    "ledger_high_water_records", "peak_rss_kb",
)


def merge_mem_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold :meth:`mem_snapshot` dicts: counters add, high waters max.

    The memory-telemetry analogue of :func:`merge_plan_snapshots` — used
    to aggregate arena/ledger gauges across the machines of one grid cell
    and across the cells of a sweep, strictly out of band (stderr
    summaries, ``--stats-json``, the progress channel — never payloads).
    """
    out = {k: 0 for k in _MEM_SUM_KEYS + _MEM_MAX_KEYS}
    for snap in snapshots:
        out["machines"] += int(snap.get("machines", 1))
        out["grow_events"] += int(snap.get("grow_events", 0))
        for k in _MEM_MAX_KEYS:
            out[k] = max(out[k], int(snap.get(k, 0) or 0))
    return out


#: Ambient (per-process) collector: when active, every machine created
#: registers its bound ``mem_snapshot`` here (a callable, not a dict —
#: gauges are read lazily so the snapshot reflects lifetime high waters).
_MEM_COLLECTOR: list | None = None


@contextmanager
def collect_mem_stats():
    """Collect the ``mem_snapshot`` callable of every machine built here.

    Yields the live list of zero-argument callables; invoke them after
    the block and fold through :func:`merge_mem_snapshots`.  Nestable,
    exactly like :func:`collect_plan_stats`.
    """
    global _MEM_COLLECTOR
    prev, _MEM_COLLECTOR = _MEM_COLLECTOR, []
    try:
        yield _MEM_COLLECTOR
    finally:
        _MEM_COLLECTOR = prev


class _IOPlan:
    """Pending physically-deferred write rounds (logically already done).

    Each deferred round is one logical parallel write whose
    stats/ledger/obs effects have already landed; only the
    ``store.write_batch`` scatter is outstanding.  Addresses accumulate
    as flat Python int lists (building per-round numpy arrays just to
    concatenate them at flush costs more than the store scatter itself
    for tiny stripe widths); ``data`` keeps the callers' record buffers
    as handed over, flattened into one ``(k, B)`` matrix only at flush.
    ``min_slot`` is the smallest pending slot — the overlap watermark
    that forces a flush before any read/free/peek that could touch a
    pending block (slots are bump-allocated monotonically, so ``slot <
    min_slot`` proves a block cannot be pending).
    """

    __slots__ = ("window", "disks", "slots", "data", "rounds", "min_slot")

    def __init__(self, window: int) -> None:
        self.window = int(window)
        self.disks: list[int] = []
        self.slots: list[int] = []
        self.data: list[np.ndarray] = []
        self.rounds = 0
        self.min_slot = -1


class ParallelDiskMachine:
    """Simulator for the parallel disk model of Figure 2.

    Parameters
    ----------
    memory:
        ``M``, number of records that fit in internal memory.
    block:
        ``B``, records per block.
    disks:
        ``D``, number of independent disks.
    processors:
        ``P``, number of internal CPUs (metered by an attached PRAM).
    pram_variant:
        Concurrency discipline of the interconnect ("EREW"/"CREW"/"CRCW").
    store:
        Storage backend name (``"arena"`` or ``"dict"``); defaults to
        ``$REPRO_PDM_STORE`` or the arena.  Backends are observationally
        identical — only wall-clock differs.
    checksums:
        Keep a per-block CRC-32 in the store so bit rot (in practice, a
        ``corrupt``-mode injected fault) raises
        :class:`~repro.exceptions.BlockCorruptionError` on read/peek.
        ``None`` (the default) consults ``$REPRO_PDM_CHECKSUMS`` and
        then the ambient fault plan: a plan that corrupts stored blocks
        turns checksums on automatically so its damage is detectable.
    """

    def __init__(
        self,
        memory: int,
        block: int,
        disks: int,
        processors: int = 1,
        pram_variant: str | Variant = Variant.EREW,
        store: str | None = None,
        checksums: bool | None = None,
    ) -> None:
        if block < 1 or disks < 1:
            raise ParameterError(f"need B >= 1 and D >= 1, got B={block}, D={disks}")
        if disks * block > memory // 2:
            raise ParameterError(
                f"model requires D·B <= M/2 (got D·B={disks * block}, M={memory})"
            )
        if not 1 <= processors <= memory:
            raise ParameterError(f"model requires 1 <= P <= M (got P={processors}, M={memory})")
        self.M = int(memory)
        self.B = int(block)
        self.D = int(disks)
        self.P = int(processors)
        self.cpu = PRAM(processors, pram_variant)
        self.stats = IOStats()
        # Fault injection (optional; None keeps the hot path untouched).
        # The ambient injector is captured at construction — each attempt
        # of each cell builds its simulation from scratch, so this scoping
        # makes a cell's fault schedule a pure function of (plan, cell,
        # attempt), independent of worker scheduling.
        injector = active_fault_injector()
        self._fault = (
            injector if injector is not None and injector.watches_store else None
        )
        if checksums is None:
            checksums = os.environ.get("REPRO_PDM_CHECKSUMS", "0") not in ("", "0")
            if not checksums and self._fault is not None:
                checksums = self._fault.wants_store_checksums
        self.store = make_store(store, self.D, self.B, checksums=bool(checksums))
        self._mem_used = 0
        self._mem_high_water = 0
        self._alloc_ptr = 0
        # Fused I/O plans (optional; None keeps the hot path untouched).
        self._plan: _IOPlan | None = None
        self.plan_stats = IOPlanStats()
        if _PLAN_COLLECTOR is not None:
            _PLAN_COLLECTOR.append(self.plan_stats)
        if _MEM_COLLECTOR is not None:
            _MEM_COLLECTOR.append(self.mem_snapshot)
        # Observability (optional; None keeps the hot path untouched).
        self._obs = None
        self._obs_scope = None
        self._m_read = self._m_write = None
        self._ev_read = self._ev_write = None
        self._trace_event = None

    # ------------------------------------------------------- fault injection

    def attach_faults(self, injector) -> None:
        """Attach a :class:`~repro.resilience.FaultInjector` directly.

        Tests use this to target one machine; production code relies on
        the ambient :func:`~repro.resilience.activate` context consulted
        at construction instead.  Only plans that watch ``store.*`` sites
        take effect here.
        """
        self._fault = (
            injector if injector is not None and injector.watches_store else None
        )
        if self._fault is not None and self._plan is not None:
            # Store-watching injectors require round-at-a-time execution
            # (see io_plans_supported); retire any in-flight plan now.
            self.flush_io_plan()
            self._plan = None

    def detach_faults(self) -> None:
        """Remove the attached fault injector (I/O hooks become no-ops)."""
        self._fault = None

    # ---------------------------------------------------------- observability

    def attach_obs(self, obs, scope: str = "pdm") -> None:
        """Attach an :class:`~repro.obs.Observation` to this machine.

        Every parallel I/O then increments counters and the stripe-width
        histograms under ``obs.scope(scope)`` (names mirror
        :meth:`IOStats.snapshot`) and emits an ``io.read`` / ``io.write``
        trace event carrying the stripe width.  With no observation
        attached (the default) the I/O path performs one ``is not None``
        check and nothing else — counted I/Os are bit-identical either way.
        """
        self._obs = obs
        self._trace_event = obs.tracer.event  # bound: one event per I/O
        self._obs_scope = reg = obs.scope(scope)
        self._m_read = (
            reg.counter("read_ios"),
            reg.counter("blocks_read"),
            reg.histogram("io.read.width"),
        )
        self._m_write = (
            reg.counter("write_ios"),
            reg.counter("blocks_written"),
            reg.counter("full_width_writes"),
            reg.histogram("io.write.width"),
        )
        # Columnar fast path: one scalar append per I/O instead of three
        # instrument updates plus an event dict.  Metrics are replayed in
        # bulk from the width columns when the scope is next read (see
        # MetricsRegistry.add_pending_flush) — exports, traces, and the
        # payload stay bit-identical to the eager path.
        read_ch = obs.tracer.scalar_channel("io.read", ("width",))
        if read_ch is not None:
            write_ch = obs.tracer.scalar_channel(
                "io.write", ("width", "full_stripe")
            )
            self._ev_read = read_ch.append
            self._ev_write = write_ch.append
            ios_r, blocks_r, hist_r = self._m_read
            ios_w, blocks_w, full_w, hist_w = self._m_write
            read_widths = read_ch.cols[0]
            write_widths = write_ch.cols[0]
            full_flags = write_ch.cols[1]
            read_cursor = [0]
            write_cursor = [0]

            def _flush_reads():
                n = len(read_widths)
                i = read_cursor[0]
                if i >= n:
                    return
                read_cursor[0] = n
                widths = read_widths[i:n]
                ios_r.inc(n - i)
                blocks_r.inc(sum(widths))
                hist_r.observe_bulk(widths)

            def _flush_writes():
                n = len(write_widths)
                i = write_cursor[0]
                if i >= n:
                    return
                write_cursor[0] = n
                widths = write_widths[i:n]
                ios_w.inc(n - i)
                blocks_w.inc(sum(widths))
                full_w.inc(sum(full_flags[i:n]))
                hist_w.observe_bulk(widths)

            reg.add_pending_flush(_flush_reads)
            reg.add_pending_flush(_flush_writes)
        self.cpu.attach_obs(obs, scope=f"{scope}.cpu")

    def detach_obs(self) -> None:
        """Remove the attached observation (hooks become no-ops again)."""
        self._obs = self._obs_scope = None
        self._m_read = self._m_write = None
        self._ev_read = self._ev_write = None
        self._trace_event = None
        self.cpu.detach_obs()

    def _observe_read(self, width: int) -> None:
        ev = self._ev_read
        if ev is not None:
            ev(width)
            return
        ios, blocks, hist = self._m_read
        ios.inc()
        blocks.inc(width)
        hist.observe(width)
        self._trace_event("io.read", width=width)

    def _observe_write(self, width: int) -> None:
        ev = self._ev_write
        if ev is not None:
            ev(width, width == self.D)
            return
        ios, blocks, full, hist = self._m_write
        ios.inc()
        blocks.inc(width)
        if width == self.D:
            full.inc()
        hist.observe(width)
        self._trace_event("io.write", width=width, full_stripe=width == self.D)

    # ------------------------------------------------------------- I/O plans

    @property
    def io_plan_window(self) -> int:
        """Rounds the active I/O plan may fuse (0 = no plan active)."""
        return self._plan.window if self._plan is not None else 0

    def io_plans_supported(self) -> bool:
        """May physical execution be fused across logical rounds here?

        Fault injectors need their store hooks to interleave with store
        effects exactly as the logical schedule does, and checksummed
        stores verify blocks on physical gather — both therefore force
        round-at-a-time execution (the plan machinery stays off and the
        classic per-round path runs unchanged, so chaos schedules and
        corruption detection are bit-identical to pre-plan behaviour).
        """
        return self._fault is None and not self.store.checksums

    @contextmanager
    def io_plan(self, window: int | None = None):
        """Scope in which physical I/O may be fused across logical rounds.

        Inside the scope every parallel write charges its **logical**
        costs (``IOStats``, memory ledger, obs counters/events) at the
        usual point — the paper's cost model is untouched — but the
        physical scatter is queued and executed as one fused
        ``store.write_batch`` per up-to-``window`` rounds.  Reads that
        could touch a pending slot flush the queue first, so store
        contents observable through *any* entry point never differ from
        round-at-a-time execution.  Planned readers additionally use
        :meth:`gather_blocks_arr` + :meth:`charge_read_io` to prefetch
        whole windows of read rounds in one store pass.

        ``window`` defaults to ``$REPRO_IO_PLAN`` (64); the scope is a
        no-op when plans are unsupported (:meth:`io_plans_supported`) or
        the window is 0.  Re-entrant: nested scopes join the outer plan.
        Yields the machine's :class:`IOPlanStats`.
        """
        if self._plan is not None:
            yield self.plan_stats
            return
        window = _env_io_plan_window() if window is None else int(window)
        if window < 1 or not self.io_plans_supported():
            yield self.plan_stats
            return
        self._plan = _IOPlan(window)
        try:
            yield self.plan_stats
        finally:
            try:
                self.flush_io_plan()
            finally:
                self._plan = None

    def flush_io_plan(self) -> None:
        """Execute all pending deferred writes as one fused store scatter."""
        plan = self._plan
        if plan is None or not plan.rounds:
            return
        disks = np.array(plan.disks, dtype=np.int64)
        slots = np.array(plan.slots, dtype=np.int64)
        pieces = plan.data
        if len(pieces) == 1:
            data = pieces[0].reshape(-1, self.B)
        else:
            # Each piece's flat record order already matches its span of
            # the disk/slot lists, so one bulk concatenate rebuilds the
            # full (k, B) scatter matrix.
            data = concat_records(
                [p.reshape(-1) for p in pieces]
            ).reshape(-1, self.B)
        plan.disks.clear()
        plan.slots.clear()
        plan.data.clear()
        plan.rounds = 0
        plan.min_slot = -1
        self.store.write_batch(disks, slots, data)
        stats = self.plan_stats
        stats.write_flushes += 1
        if disks.size > stats.max_write_flush_blocks:
            stats.max_write_flush_blocks = int(disks.size)

    def _flush_if_overlap(self, slots: np.ndarray) -> None:
        """Flush pending writes iff ``slots`` could address a pending block.

        Slots are bump-allocated monotonically, so any slot below the
        plan's ``min_slot`` watermark provably predates every pending
        write — the streaming common case (reads consume the *input* run
        while writes land on freshly allocated slots) never flushes.
        """
        plan = self._plan
        if plan is None or not plan.rounds:
            return
        sl_max = max(slots.tolist()) if slots.size <= 64 else int(slots.max())
        if sl_max >= plan.min_slot:
            self.flush_io_plan()

    def gather_blocks_arr(
        self, disks: np.ndarray, slots: np.ndarray, free: bool = False
    ) -> np.ndarray:
        """Physically gather blocks for an I/O plan — **no logical charges**.

        The plan executor's read half: fetches (and with ``free=True``
        recycles) many future rounds' blocks in one store pass, returning
        the fused ``(k, B)`` record matrix.  The caller must charge each
        logical round via :meth:`charge_read_io` exactly where the
        unfused schedule would have performed it.  The one-block-per-disk
        contention rule is a *per-logical-round* rule — the planner
        enforces it per round, never across the fused gather — so only
        negative slots are guarded here.
        """
        disks = np.asarray(disks, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        if disks.size == 0:
            return np.empty((0, self.B), dtype=RECORD_DTYPE)
        self._flush_if_overlap(slots)
        if int(slots.min()) < 0:
            i = int(np.argmax(slots < 0))
            raise AddressError(
                f"negative slot in BlockAddress(disk={int(disks[i])}, slot={int(slots[i])})"
            )
        matrix = self.store.read_batch(disks, slots, free=free)
        stats = self.plan_stats
        stats.read_gathers += 1
        if disks.size > stats.max_read_gather_blocks:
            stats.max_read_gather_blocks = int(disks.size)
        return matrix

    def charge_read_io(self, width: int) -> None:
        """Charge one logical parallel read of ``width`` blocks (plan executor).

        The logical half of a planned read: the fault hook, memory
        ledger, ``IOStats`` counters and obs event fire here — at the
        point the unfused schedule would have issued the I/O — so every
        counter, trace event, and failure (``CapacityError`` included)
        surfaces exactly as in round-at-a-time execution.
        """
        if self._fault is not None:
            self._fault.on_read()
        self.mem_acquire(width * self.B)
        self.stats.read_ios += 1
        self.stats.blocks_read += width
        self.plan_stats.prefetched_read_rounds += 1
        if self._obs is not None:
            self._observe_read(width)

    # ------------------------------------------------- batched I/O (fast path)

    def read_blocks_arr(
        self,
        disks: np.ndarray,
        slots: np.ndarray,
        free: bool = False,
        checked: bool = True,
    ) -> np.ndarray:
        """One parallel read I/O over integer address arrays.

        ``disks[i], slots[i]`` addresses block ``i``; all disks must be
        distinct (one block per disk per I/O).  Returns a **freshly
        gathered** ``(k, B)`` record matrix — never views into the
        backing store — so the caller may hold it across later writes
        and frees.  Raises :class:`DiskContentionError` on duplicate
        disks and :class:`CapacityError` if memory cannot hold the
        fetched records.

        ``free=True`` drops the blocks right after the gather — the
        streaming consume pattern — identical to a separate
        :meth:`free_blocks_arr` call but fused in the store (the row
        lookup is shared).  ``checked=False`` skips the contention and
        disk-range validation for callers that already enforce them at
        their own layer (:class:`~repro.pdm.striping.VirtualDisks`
        validates distinct in-range *virtual* disks, which maps to
        distinct in-range physical disks); caller-provided slots are
        still guarded non-negative (a negative slot would silently
        alias under the arena's row map).
        """
        disks = np.asarray(disks, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        k = disks.size
        if k == 0:
            return np.empty((0, self.B), dtype=RECORD_DTYPE)
        if checked:
            self._check_io_batch(disks, slots)
        else:
            sl = slots.tolist()
            if min(sl) < 0:
                i = next(i for i, s in enumerate(sl) if s < 0)
                raise AddressError(
                    f"negative slot in BlockAddress(disk={int(disks[i])}, slot={sl[i]})"
                )
        if self._plan is not None:
            self._flush_if_overlap(slots)
        if self._fault is not None:
            # One opportunity per parallel I/O; fires *before* the store is
            # touched, so a failed read has no partial effects (nothing
            # gathered, nothing freed) — identically on both backends.
            self._fault.on_read()
        matrix = self.store.read_batch(disks, slots, free=free)
        self.mem_acquire(k * self.B)
        self.stats.read_ios += 1
        self.stats.blocks_read += k
        if self._obs is not None:
            self._observe_read(k)
        return matrix

    def write_blocks_arr(
        self,
        disks: np.ndarray,
        slots: np.ndarray,
        data: np.ndarray,
        checked: bool = True,
    ) -> None:
        """One parallel write I/O: scatter a ``(k, B)`` record matrix.

        Row ``i`` of ``data`` lands on ``(disks[i], slots[i])``.  The
        store copies the rows (one vectorized scatter), so ``data`` may
        be a view of caller-owned memory.  The written records leave
        internal memory (the ledger is released).  ``checked=False``
        skips contention/address validation for callers that enforce
        both at their own layer *and* generate the slots themselves
        (:class:`~repro.pdm.striping.VirtualDisks` bump-allocates them).
        """
        disks = np.asarray(disks, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        k = disks.size
        if k == 0:
            return
        if data.dtype != RECORD_DTYPE:
            raise TypeError(f"blocks must have record dtype, got {data.dtype}")
        if data.shape != (k, self.B):
            raise AddressError(
                f"write batch must be shaped (k={k}, B={self.B}), got {data.shape}"
            )
        if checked:
            self._check_io_batch(disks, slots)
        corrupt = None
        if self._fault is not None:
            # Raise-class rules fire *before* the write (no partial
            # effects); corrupt rules return the (row, bit_seed) to damage
            # after the scatter lands.
            corrupt = self._fault.on_write(k)
        plan = self._plan
        if plan is not None and corrupt is None:
            # Fused execution: the logical effects below land now, in
            # program order; only the physical scatter is deferred.  The
            # caller must not mutate `data` rows after this call — every
            # in-tree writer hands over a freshly assembled buffer.
            # (`corrupt` can only be non-None with an attached injector,
            # which disables plans — the branch guard is defensive.)
            slot_list = slots.tolist()
            plan.disks.extend(disks.tolist())
            plan.slots.extend(slot_list)
            plan.data.append(data)
            plan.rounds += 1
            smin = min(slot_list)
            if plan.min_slot < 0 or smin < plan.min_slot:
                plan.min_slot = smin
            self.plan_stats.deferred_write_rounds += 1
            if plan.rounds >= plan.window:
                self.flush_io_plan()
        else:
            self.store.write_batch(disks, slots, data)
            if corrupt is not None:
                row, bit_seed = corrupt
                self.store.corrupt_block(int(disks[row]), int(slots[row]), bit_seed)
        self.mem_release(k * self.B)
        self.stats.write_ios += 1
        self.stats.blocks_written += k
        if k == self.D:
            self.stats.full_width_writes += 1
        if self._obs is not None:
            self._observe_write(k)

    def write_round_blocks(
        self, disks: list, slot: int, blocks: list
    ) -> None:
        """One parallel write of whole blocks sharing a single slot.

        The list-native fast path for round-structured writers
        (:meth:`repro.pdm.striping.VirtualDisks.write_round`): ``disks``
        is a plain int list (distinctness/range already enforced by the
        caller, exactly like ``checked=False``), every block lands at
        ``slot``, and ``blocks`` are record arrays whose concatenation in
        list order is the scatter payload (each a multiple of ``B``
        records, flat order matching ``disks``).  Logical effects —
        fault hook, ledger, :class:`IOStats`, obs — are identical to the
        equivalent :meth:`write_blocks_arr` call; only the per-call array
        construction is gone.  Blocks are handed over: the caller must
        not mutate them afterwards (deferred scatter under a plan).
        """
        k = len(disks)
        if k == 0:
            return
        corrupt = None
        if self._fault is not None:
            corrupt = self._fault.on_write(k)
        plan = self._plan
        if plan is not None and corrupt is None:
            plan.disks.extend(disks)
            plan.slots.extend([slot] * k)
            plan.data.extend(blocks)
            plan.rounds += 1
            if plan.min_slot < 0 or slot < plan.min_slot:
                plan.min_slot = slot
            self.plan_stats.deferred_write_rounds += 1
            if plan.rounds >= plan.window:
                self.flush_io_plan()
        else:
            disk_arr = np.array(disks, dtype=np.int64)
            slot_arr = np.full(k, slot, dtype=np.int64)
            data = (
                blocks[0] if len(blocks) == 1 else concat_records(blocks)
            ).reshape(-1, self.B)
            self.store.write_batch(disk_arr, slot_arr, data)
            if corrupt is not None:
                row, bit_seed = corrupt
                self.store.corrupt_block(int(disk_arr[row]), slot, bit_seed)
        self.mem_release(k * self.B)
        self.stats.write_ios += 1
        self.stats.blocks_written += k
        if k == self.D:
            self.stats.full_width_writes += 1
        if self._obs is not None:
            self._observe_write(k)

    def free_blocks_arr(self, disks: np.ndarray, slots: np.ndarray) -> None:
        """Drop many blocks at once (no I/O cost; unwritten slots are no-ops)."""
        disks = np.asarray(disks, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        if disks.size == 0:
            return
        self._validate_addr_arr(disks, slots)
        if self._plan is not None:
            self._flush_if_overlap(slots)
        if self._fault is not None:
            self._fault.on_free()
        self.store.free_batch(disks, slots)

    def load_blocks_arr(
        self, disks: np.ndarray, slots: np.ndarray, data: np.ndarray
    ) -> None:
        """Place blocks on the disks without charging I/Os or the ledger.

        External sorting starts with the data resident on disk
        (Section 1); the initial layout is part of the problem
        statement, not the algorithm's cost — so no contention rule and
        no stats either.
        """
        disks = np.asarray(disks, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        k = disks.size
        if k == 0:
            return
        if data.dtype != RECORD_DTYPE:
            raise TypeError(f"blocks must have record dtype, got {data.dtype}")
        if data.shape != (k, self.B):
            raise AddressError(
                f"load batch must be shaped (k={k}, B={self.B}), got {data.shape}"
            )
        self._validate_addr_arr(disks, slots)
        if self._plan is not None:
            self._flush_if_overlap(slots)
        self.store.write_batch(disks, slots, data)

    # ------------------------------------------------------------------ I/O

    def read_blocks(self, addresses: Sequence[BlockAddress]) -> list[np.ndarray]:
        """One parallel read I/O: fetch one block from each addressed disk.

        Thin shim over :meth:`read_blocks_arr`; the returned blocks are
        rows of the freshly gathered batch matrix (safe to hold and
        mutate — they never alias the store).

        Raises :class:`DiskContentionError` if two addresses share a disk,
        and :class:`CapacityError` if memory cannot hold the fetched records.
        """
        addresses = list(addresses)
        if not addresses:
            return []
        k = len(addresses)
        disks = np.fromiter((a.disk for a in addresses), np.int64, k)
        slots = np.fromiter((a.slot for a in addresses), np.int64, k)
        matrix = self.read_blocks_arr(disks, slots)
        return list(matrix)

    def write_blocks(self, writes: Sequence[tuple[BlockAddress, np.ndarray]]) -> None:
        """One parallel write I/O: store one block on each addressed disk.

        Thin shim over :meth:`write_blocks_arr`.  The written records
        leave internal memory (the ledger is released).  Blocks must
        contain exactly ``B`` records of the record dtype.
        """
        writes = list(writes)
        if not writes:
            return
        k = len(writes)
        disks = np.fromiter((addr.disk for addr, _ in writes), np.int64, k)
        slots = np.fromiter((addr.slot for addr, _ in writes), np.int64, k)
        self._check_contention_arr(disks)
        matrix = np.empty((k, self.B), dtype=RECORD_DTYPE)
        for i, (_, data) in enumerate(writes):
            if data.dtype != RECORD_DTYPE:
                raise TypeError(f"blocks must have record dtype, got {data.dtype}")
            if data.shape != (self.B,):
                raise AddressError(
                    f"block must hold exactly B={self.B} records, got shape {data.shape}"
                )
            matrix[i] = data
        self.write_blocks_arr(disks, slots, matrix)

    def _check_io_batch(self, disks: np.ndarray, slots: np.ndarray) -> None:
        """Contention + address validation fused into one pass.

        Semantically identical (same checks, same order, same messages) to
        :meth:`_check_contention_arr` followed by :meth:`_validate_addr_arr`,
        but the small-batch path materializes each address list exactly
        once — the per-I/O overhead matters at ~20k I/Os/s.
        """
        k = disks.size
        if k > 64:
            self._check_contention_arr(disks)
            self._validate_addr_arr(disks, slots)
            return
        dl = disks.tolist()
        if k > 1 and len(set(dl)) != k:
            seen: set[int] = set()
            for d in dl:
                if d in seen:
                    raise DiskContentionError(
                        f"two blocks addressed to disk {d} in one I/O"
                    )
                seen.add(d)
        if min(dl) < 0 or max(dl) >= self.D:
            bad = next(d for d in dl if not 0 <= d < self.D)
            raise AddressError(f"disk {bad} out of range [0, {self.D})")
        sl = slots.tolist()
        if min(sl) < 0:
            i = next(i for i, s in enumerate(sl) if s < 0)
            raise AddressError(
                f"negative slot in BlockAddress(disk={dl[i]}, slot={sl[i]})"
            )

    def _check_contention_arr(self, disks: np.ndarray) -> None:
        # One block per disk per I/O.  A Python set over the (always tiny:
        # k ≤ D) address list beats np.unique by an order of magnitude at
        # these sizes; np.unique takes over for genuinely wide batches.
        k = disks.size
        if k <= 1:
            return
        if k <= 64:
            listed = disks.tolist()
            if len(set(listed)) != k:
                seen: set[int] = set()
                for d in listed:
                    if d in seen:
                        raise DiskContentionError(
                            f"two blocks addressed to disk {d} in one I/O"
                        )
                    seen.add(d)
        elif np.unique(disks).size != k:
            uniq, counts = np.unique(disks, return_counts=True)
            dup = int(uniq[np.argmax(counts > 1)])
            raise DiskContentionError(
                f"two blocks addressed to disk {dup} in one I/O"
            )

    def _check_contention(self, addresses: Iterable[BlockAddress]) -> None:
        seen: set[int] = set()
        for addr in addresses:
            if addr.disk in seen:
                raise DiskContentionError(
                    f"two blocks addressed to disk {addr.disk} in one I/O"
                )
            seen.add(addr.disk)

    def _validate_addr_arr(self, disks: np.ndarray, slots: np.ndarray) -> None:
        # Builtin min/max over small lists avoid per-call ufunc-reduce
        # overhead (four numpy reductions per I/O add up at ~20k I/Os/s).
        if disks.size <= 64:
            dl, sl = disks.tolist(), slots.tolist()
            if min(dl) < 0 or max(dl) >= self.D:
                bad = next(d for d in dl if not 0 <= d < self.D)
                raise AddressError(f"disk {bad} out of range [0, {self.D})")
            if min(sl) < 0:
                i = next(i for i, s in enumerate(sl) if s < 0)
                raise AddressError(
                    f"negative slot in BlockAddress(disk={dl[i]}, slot={sl[i]})"
                )
            return
        if int(disks.min()) < 0 or int(disks.max()) >= self.D:
            bad = int(disks[(disks < 0) | (disks >= self.D)][0])
            raise AddressError(f"disk {bad} out of range [0, {self.D})")
        if int(slots.min()) < 0:
            i = int(np.argmax(slots < 0))
            raise AddressError(
                f"negative slot in BlockAddress(disk={int(disks[i])}, slot={int(slots[i])})"
            )

    def _validate_addr(self, disk: int, slot: int) -> None:
        if not 0 <= disk < self.D:
            raise AddressError(f"disk {disk} out of range [0, {self.D})")
        if slot < 0:
            raise AddressError(
                f"negative slot in BlockAddress(disk={disk}, slot={slot})"
            )

    def peek_block(self, addr: BlockAddress) -> np.ndarray:
        """Inspect a block without an I/O (for tests/validators only).

        Under the arena backend this is a **read-only zero-copy view**
        of the stored block; set ``REPRO_PDM_SAFE_COPIES=1`` for a
        defensive copy (the dict backend always copies).
        """
        self._validate_addr(addr.disk, addr.slot)
        if self._plan is not None:
            self.flush_io_plan()
        return self.store.peek(addr.disk, addr.slot)

    def free_block(self, addr: BlockAddress) -> None:
        """Drop a block from a disk (reclaims simulator memory, no I/O cost)."""
        self._validate_addr(addr.disk, addr.slot)
        if self._plan is not None:
            self.flush_io_plan()
        self.store.free(addr.disk, addr.slot)

    # ------------------------------------------------------- memory ledger

    @property
    def memory_in_use(self) -> int:
        """Records currently checked out of the ledger (held in memory)."""
        return self._mem_used

    @property
    def memory_free(self) -> int:
        return self.M - self._mem_used

    def mem_acquire(self, n_records: int) -> None:
        """Claim internal memory for ``n_records``; raises on overflow."""
        if n_records < 0:
            raise ParameterError("cannot acquire negative memory")
        if self._mem_used + n_records > self.M:
            raise CapacityError(
                f"memory overflow: {self._mem_used} + {n_records} > M={self.M}"
            )
        self._mem_used += n_records
        if self._mem_used > self._mem_high_water:
            self._mem_high_water = self._mem_used

    def mem_release(self, n_records: int) -> None:
        """Return ``n_records`` of internal memory to the ledger."""
        if n_records < 0:
            raise ParameterError("cannot release negative memory")
        if n_records > self._mem_used:
            raise CapacityError(
                f"memory underflow: releasing {n_records} with only {self._mem_used} in use"
            )
        self._mem_used -= n_records

    def mem_snapshot(self) -> dict:
        """Memory gauges: store occupancy + the internal-memory ledger.

        Out-of-band telemetry (stderr, ``--stats-json``, the progress
        channel) — never part of a payload.  ``ledger_high_water_records``
        is the lifetime peak of :attr:`memory_in_use`, i.e. how close the
        run actually came to the configured ``M``.
        """
        snap = self.store.mem_snapshot()
        snap["machines"] = 1
        snap["ledger_high_water_records"] = int(self._mem_high_water)
        snap["M"] = self.M
        return snap

    # -------------------------------------------------------------- misc

    def next_free_slot(self, disk: int) -> int:
        """Smallest unused slot index on ``disk`` (simple allocator)."""
        if self._plan is not None:
            self.flush_io_plan()
        return self.store.max_slot(disk) + 1

    def allocate_slots(self, n_slots: int) -> int:
        """Reserve ``n_slots`` consecutive slots on every disk (bump allocator).

        Returns the starting slot.  Keeps independently created files and
        regions from overlapping on the simulated disks.
        """
        if n_slots < 0:
            raise ParameterError("cannot allocate negative slots")
        start = self._alloc_ptr
        self._alloc_ptr += n_slots
        return start

    def reset_stats(self) -> None:
        """Zero the I/O and CPU counters (between experiment phases).

        Also resets the attached metrics scope (if any), so compare-style
        multi-phase runs report clean per-phase numbers from both the
        ``IOStats`` snapshot and the registry export.  ``_alloc_ptr`` (the
        disk slot bump allocator) is *intentionally preserved*: resetting
        counters must not let a later phase overwrite an earlier phase's
        resident blocks.
        """
        self.stats = IOStats()
        self.cpu.reset()
        if self._obs_scope is not None:
            self._obs_scope.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelDiskMachine(M={self.M}, B={self.B}, D={self.D}, P={self.P}, "
            f"ios={self.stats.total_ios})"
        )
