"""In-memory reference sorts (correctness anchors for tests and examples)."""

from __future__ import annotations

import numpy as np

from ..records import RECORD_DTYPE, argsort_records

__all__ = ["numpy_sort_records", "python_merge_sort"]


def numpy_sort_records(records: np.ndarray) -> np.ndarray:
    """Sort a record array in composite (key, rid) order via NumPy."""
    if records.dtype != RECORD_DTYPE:
        raise TypeError(f"expected record array, got {records.dtype}")
    return records[argsort_records(records)]


def python_merge_sort(values: list) -> list:
    """Plain bottom-up merge sort over any comparable list (tiny reference).

    Used in tests as an independently implemented oracle (no NumPy in the
    comparison path).
    """
    items = list(values)
    width = 1
    n = len(items)
    while width < n:
        out = []
        for lo in range(0, n, 2 * width):
            a = items[lo : lo + width]
            b = items[lo + width : lo + 2 * width]
            i = j = 0
            while i < len(a) and j < len(b):
                if b[j] < a[i]:
                    out.append(b[j])
                    j += 1
                else:
                    out.append(a[i])
                    i += 1
            out.extend(a[i:])
            out.extend(b[j:])
        items = out
        width *= 2
    return items
