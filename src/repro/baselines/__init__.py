"""Baselines the paper positions Balance Sort against (Section 1).

* :mod:`~repro.baselines.striped_mergesort` — merge sort over *fully
  striped* disks: deterministic but suboptimal by a multiplicative
  ``log(M/B)/log(M/DB)`` factor (the paper: "the number of I/Os used can be
  much larger than optimal, by a multiplicative factor of log(M/B)").
* :mod:`~repro.baselines.randomized_vs` — the randomized distribution sort
  of Vitter and Shriver [ViSa]: I/O-optimal in expectation, the algorithm
  Balance Sort derandomizes.
* :mod:`~repro.baselines.greed_sort` — Greed Sort [NoV]: the earlier
  deterministic optimal PDM sort (merge-based), "known to be optimal only
  for the parallel disk models and not for hierarchical memories".
* :mod:`~repro.baselines.internal` — plain in-memory reference sorts.
"""

from .striped_mergesort import striped_merge_sort
from .randomized_vs import randomized_distribution_sort
from .greed_sort import greed_sort
from .hierarchy_mergesort import hierarchy_merge_sort
from .internal import numpy_sort_records

__all__ = [
    "striped_merge_sort",
    "randomized_distribution_sort",
    "greed_sort",
    "hierarchy_merge_sort",
    "numpy_sort_records",
]
