"""Disk-striped merge sort — the deterministic-but-suboptimal baseline.

Section 1: "Disk striping is a commonly-used technique in which the D disks
are synchronized ... This technique effectively transforms the disks into a
single disk with larger block size B' = DB.  Merge sort combined with disk
striping is deterministic, but the number of I/Os used can be much larger
than optimal, by a multiplicative factor of log(M/B)."

The mechanism: an R-way merge holds one block per input run plus an output
buffer, so with striped superblocks of ``B' = DB`` records the fan-in drops
from ``Θ(M/B)`` to ``R = Θ(M/DB)``, multiplying the number of merge passes
by ``log(M/B)/log(M/(DB))`` — which approaches ``log(M/B)`` as ``DB``
approaches ``M``.  The implementation below runs on the real machine
(every superblock read/write is a parallel I/O through the one-virtual-disk
view), so the measured I/O counts exhibit exactly that factor in the E3
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..pdm.machine import ParallelDiskMachine
from ..pdm.striping import fully_striped_view
from ..pram.sorting import cole_merge_sort
from ..records import RECORD_DTYPE, composite_keys, concat_records
from ..core.streams import (
    OrderedRun,
    load_ordered_run,
    peek_run,
    read_run_batches,
    write_ordered_run,
)

__all__ = ["striped_merge_sort", "StripedMergeSortResult"]


@dataclass
class StripedMergeSortResult:
    output: OrderedRun
    n_records: int
    io_stats: dict
    cpu: dict
    storage: object
    fan_in: int
    merge_passes: int

    @property
    def total_ios(self) -> int:
        return self.io_stats["total_ios"]


def striped_merge_sort(
    machine: ParallelDiskMachine,
    records: np.ndarray | None = None,
    *,
    run: OrderedRun | None = None,
    fan_in: int | None = None,
) -> StripedMergeSortResult:
    """Externally sort with R-way merging over striped superblocks.

    ``fan_in`` defaults to ``max(2, M/(2·DB))`` — the memory-limited fan-in
    once blocks are ``DB`` records wide (one buffered superblock per run
    plus an output superblock must fit in ``M``).
    """
    storage = fully_striped_view(machine)
    if (records is None) == (run is None):
        raise ParameterError("provide exactly one of records / run")
    if run is None:
        run = load_ordered_run(storage, records)
    n = run.n_records
    superblock = storage.virtual_block_size  # = DB
    r = fan_in or max(2, machine.M // (2 * superblock))
    if (r + 1) * superblock > machine.M:
        raise ParameterError(
            f"fan-in {r} needs {(r + 1) * superblock} records of memory, M={machine.M}"
        )

    # --- run formation: sort memory-sized loads ---------------------------
    load_size = machine.M - superblock  # leave room for padding writes
    runs: list[OrderedRun] = []
    buffer: list[np.ndarray] = []
    buffered = 0

    def emit(chunks: list, size: int) -> None:
        if size == 0:
            return
        load = concat_records(chunks) if len(chunks) > 1 else chunks[0]
        ordered = cole_merge_sort(machine.cpu, load)
        runs.append(write_ordered_run(storage, ordered))

    for chunk in read_run_batches(storage, run, free=True):
        buffer.append(chunk)
        buffered += chunk.shape[0]
        if buffered >= load_size:
            emit(buffer, buffered)
            buffer, buffered = [], 0
    emit(buffer, buffered)
    if not runs:
        empty = OrderedRun(blocks=[], n_records=0)
        return StripedMergeSortResult(
            output=empty, n_records=0, io_stats=machine.stats.snapshot(),
            cpu=machine.cpu.snapshot(), storage=storage, fan_in=r, merge_passes=0,
        )

    # --- merge passes -----------------------------------------------------
    passes = 0
    while len(runs) > 1:
        passes += 1
        merged: list[OrderedRun] = []
        for i in range(0, len(runs), r):
            merged.append(_merge_runs(machine, storage, runs[i : i + r]))
        runs = merged
    return StripedMergeSortResult(
        output=runs[0],
        n_records=n,
        io_stats=machine.stats.snapshot(),
        cpu=machine.cpu.snapshot(),
        storage=storage,
        fan_in=r,
        merge_passes=passes,
    )


def _merge_runs(machine, storage, in_runs: list[OrderedRun]) -> OrderedRun:
    """R-way streamed merge: one buffered superblock per input run."""
    if len(in_runs) == 1:
        return in_runs[0]
    streams = [read_run_batches(storage, rn, free=True) for rn in in_runs]
    buffers: list[np.ndarray | None] = []
    for s in streams:
        buffers.append(next(s, None))
    out_parts: list[np.ndarray] = []
    out_blocks = []
    out_count = 0
    superblock = storage.virtual_block_size

    def flush_output(final: bool = False) -> None:
        nonlocal out_parts, out_count
        if not out_parts:
            return
        data = concat_records(out_parts)
        cut = data.shape[0] if final else (data.shape[0] // superblock) * superblock
        if cut == 0:
            out_parts = [data]
            return
        head, tail = data[:cut], data[cut:]
        written = write_ordered_run(storage, head)
        out_blocks.extend(written.blocks)
        out_parts = [tail] if tail.size else []
        out_count += head.shape[0]

    # CPU charge for the merge network: n log r work across the pass.
    total = sum(rn.n_records for rn in in_runs)
    machine.cpu.charge(
        work=total * max(1, (len(in_runs) - 1).bit_length()),
        depth=max(1, total.bit_length()),
        label="striped-merge",
    )

    while True:
        # Refill any empty-but-live buffer first: a live run with an empty
        # buffer has unread data whose keys must bound the emitted prefix.
        for i in range(len(buffers)):
            if buffers[i] is not None and buffers[i].size == 0:
                buffers[i] = next(streams[i], None)
        live = [i for i in range(len(buffers)) if buffers[i] is not None]
        if not live:
            break
        # Safe boundary: the smallest "last buffered key" among live runs —
        # records at or below it cannot be preceded by unread data.
        boundary = min(composite_keys(buffers[i])[-1] for i in live)
        emit_parts = []
        for i in live:
            b = buffers[i]
            cut = int(np.searchsorted(composite_keys(b), boundary, side="right"))
            if cut:
                emit_parts.append(b[:cut])
                buffers[i] = b[cut:]
        # The boundary-owning run's whole buffer is emitted ⇒ progress.
        block = concat_records(emit_parts)
        out_parts.append(block[np.argsort(composite_keys(block), kind="stable")])
        flush_output()
    flush_output(final=True)
    return OrderedRun(blocks=out_blocks, n_records=out_count)
