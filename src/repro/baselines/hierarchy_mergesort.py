"""Merge sort with hierarchy striping — the baseline Balance Sort beats on
parallel memory hierarchies.

Two of the paper's claims motivate this module:

* Section 1: merge sort + striping is deterministic but pays an extra
  logarithmic factor over optimal;
* Sections 1 and 6: Greed Sort — a *merge-based* deterministic algorithm —
  "does not seem to yield optimal sorting bounds on memory hierarchies";
  "the Greed Sort technique ... is known to be optimal only for the
  parallel disk models and not for hierarchical memories" (Section 3).

The structural reason is machine-independent: a 2-way (or any O(1)-way)
merge must stream the *entire* dataset once per merge level, and there are
``Θ(log(N/H))`` levels; on an HMM hierarchy each full stream of n records
costs ``Θ((n/H)·f(n/H))``-class time, so the total picks up a full
``log(N/H)`` factor that Balance Sort's ``√N``-way distribution avoids
(its recursion depth is ``O(log log N)``).  The E12 benchmark measures
exactly this gap growing with N while Balance Sort's ratio stays flat.

Implementation: the H hierarchies are *fully striped* (one virtual channel
of H-record blocks via :class:`~repro.hierarchies.parallel.VirtualHierarchies`
with ``n_virtual=1``); run formation sorts ``3H``-record loads at the base
level (charged ``T(H)`` per base batch, as in Algorithm 1's base case), and
each merge pass streams the runs through the base with the safe-boundary
two-pointer merge, every block motion charged through the storage layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..hierarchies.parallel import ParallelHierarchies, VirtualHierarchies
from ..records import composite_keys, concat_records, sort_records
from ..core.streams import (
    OrderedRun,
    load_ordered_run,
    read_run_batches,
    write_ordered_run,
)

__all__ = ["hierarchy_merge_sort", "HierarchyMergeSortResult"]


@dataclass
class HierarchyMergeSortResult:
    output: OrderedRun
    n_records: int
    storage: VirtualHierarchies
    memory_time: float
    interconnect_time: float
    total_time: float
    merge_passes: int
    fan_in: int


def hierarchy_merge_sort(
    machine: ParallelHierarchies,
    records: np.ndarray | None = None,
    *,
    run: OrderedRun | None = None,
    fan_in: int = 2,
) -> HierarchyMergeSortResult:
    """Binary (or small-R) merge sort over fully striped hierarchies."""
    if fan_in < 2:
        raise ParameterError("fan-in must be at least 2")
    storage = VirtualHierarchies(machine, n_virtual=1)
    if (records is None) == (run is None):
        raise ParameterError("provide exactly one of records / run")
    if run is None:
        run = load_ordered_run(storage, records)
    n = run.n_records
    h = machine.h

    # --- run formation: sort 3H-record loads at the base level ------------
    load_size = 3 * h
    runs: list[OrderedRun] = []
    buffer: list[np.ndarray] = []
    buffered = 0

    def emit(chunks, size):
        if size == 0:
            return
        load = concat_records(chunks) if len(chunks) > 1 else chunks[0]
        batches = -(-load.shape[0] // h)
        machine.charge_base_sort(rounds=batches)
        if batches > 1:  # binary merge of the ≤3 base-sorted lists
            machine.charge_interconnect(2 * (load.shape[0] / h + math.log2(max(2, h))))
        runs.append(write_ordered_run(storage, sort_records(load)))

    for chunk in read_run_batches(storage, run, free=True):
        buffer.append(chunk)
        buffered += chunk.shape[0]
        if buffered >= load_size:
            emit(buffer, buffered)
            buffer, buffered = [], 0
    emit(buffer, buffered)

    if not runs:
        return HierarchyMergeSortResult(
            output=OrderedRun(blocks=[], n_records=0), n_records=0, storage=storage,
            memory_time=machine.memory_time, interconnect_time=machine.interconnect_time,
            total_time=machine.total_time, merge_passes=0, fan_in=fan_in,
        )

    # --- merge passes ------------------------------------------------------
    passes = 0
    while len(runs) > 1:
        passes += 1
        merged = []
        for i in range(0, len(runs), fan_in):
            merged.append(_merge(machine, storage, runs[i : i + fan_in]))
        runs = merged

    return HierarchyMergeSortResult(
        output=runs[0],
        n_records=n,
        storage=storage,
        memory_time=machine.memory_time,
        interconnect_time=machine.interconnect_time,
        total_time=machine.total_time,
        merge_passes=passes,
        fan_in=fan_in,
    )


def _merge(machine, storage, in_runs: list[OrderedRun]) -> OrderedRun:
    """Safe-boundary streamed merge of R runs over the striped channel."""
    if len(in_runs) == 1:
        return in_runs[0]
    streams = [read_run_batches(storage, rn, free=True) for rn in in_runs]
    buffers: list[np.ndarray | None] = [next(s, None) for s in streams]
    vb = storage.virtual_block_size
    out_parts: list[np.ndarray] = []
    out_blocks = []
    out_count = 0

    total = sum(rn.n_records for rn in in_runs)
    # interconnect cost of the merge itself: the base level advances H
    # records per comparison round
    machine.charge_interconnect(total / machine.h + math.log2(max(2, machine.h)))

    def flush(final=False):
        nonlocal out_parts, out_count
        if not out_parts:
            return
        data = concat_records(out_parts)
        cut = data.shape[0] if final else (data.shape[0] // vb) * vb
        if cut == 0:
            out_parts = [data]
            return
        written = write_ordered_run(storage, data[:cut])
        out_blocks.extend(written.blocks)
        out_count += cut
        out_parts = [data[cut:]] if cut < data.shape[0] else []

    while True:
        for i in range(len(buffers)):
            if buffers[i] is not None and buffers[i].size == 0:
                buffers[i] = next(streams[i], None)
        live = [i for i in range(len(buffers)) if buffers[i] is not None]
        if not live:
            break
        boundary = min(composite_keys(buffers[i])[-1] for i in live)
        emit_parts = []
        for i in live:
            b = buffers[i]
            cut = int(np.searchsorted(composite_keys(b), boundary, side="right"))
            if cut:
                emit_parts.append(b[:cut])
                buffers[i] = b[cut:]
        block = concat_records(emit_parts)
        out_parts.append(block[np.argsort(composite_keys(block), kind="stable")])
        flush()
    flush(final=True)
    return OrderedRun(blocks=out_blocks, n_records=out_count)
