"""Randomized distribution sort of Vitter and Shriver [ViSa].

The algorithm Balance Sort derandomizes: records are partitioned into
buckets exactly as in Balance Sort, but each full bucket block is written
to a *uniformly random* disk — "the randomization was used to distribute
each of the buckets evenly over the D disks so they could be read
efficiently with parallel I/O" (Section 1).  No histogram/auxiliary/location
matrices, no matching: the balls-in-bins concentration does the balancing
in expectation, and the measured per-bucket read cost is the random
analogue of Theorem 4's deterministic factor-2 bound.

Runs on the *same* machine and storage abstractions as Balance Sort so the
E3 benchmark compares them I/O for I/O; it can also use all ``D`` disks as
independent channels (``virtual_disks=D``) — the freedom randomization
buys, since it needs no ``(H')³`` processors for matching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..pdm.machine import ParallelDiskMachine
from ..pdm.striping import VirtualDisks
from ..pram.primitives import log2_ceil
from ..pram.sorting import cole_merge_sort
from ..records import composite_keys, concat_records, pad_records
from ..core.balance import BlockRef, BucketRun
from ..core.partition import pdm_partition_elements
from ..core.sort_pdm import default_bucket_count
from ..core.streams import (
    OrderedRun,
    concat_runs,
    load_ordered_run,
    read_run_all,
    read_run_batches,
    write_ordered_run,
)

__all__ = ["randomized_distribution_sort", "RandomizedSortResult", "RandomizedPlacer"]


@dataclass
class RandomizedSortResult:
    output: OrderedRun
    n_records: int
    io_stats: dict
    cpu: dict
    storage: object
    recursion_depth: int = 0
    max_balance_factor: float = 1.0

    @property
    def total_ios(self) -> int:
        return self.io_stats["total_ios"]


class RandomizedPlacer:
    """[ViSa] placement: queue full bucket blocks, write each to a random disk.

    Each write round takes the queued blocks, assigns every block an
    independent uniform channel, and writes the subset that landed on
    distinct channels (collisions wait for the next round) — one parallel
    I/O per round, at most one block per disk, exactly the paper's model
    discipline.
    """

    def __init__(self, storage: VirtualDisks, pivots: np.ndarray, rng: np.random.Generator):
        self.storage = storage
        self.pivots = np.asarray(pivots, dtype=np.uint64)
        self.rng = rng
        self.n_buckets = self.pivots.size + 1
        self.n_channels = storage.n_virtual
        self.block_size = storage.virtual_block_size
        self.chains: list[list[list[BlockRef]]] = [
            [[] for _ in range(self.n_channels)] for _ in range(self.n_buckets)
        ]
        self.counts = np.zeros(self.n_buckets, dtype=np.int64)
        self._partials: list[list[np.ndarray]] = [[] for _ in range(self.n_buckets)]
        self._sizes = np.zeros(self.n_buckets, dtype=np.int64)
        self._queue: deque = deque()
        self.rounds = 0
        self.collisions = 0

    def feed(self, records: np.ndarray) -> None:
        """Partition records into buckets and enqueue full blocks."""
        if records.size == 0:
            return
        buckets = np.searchsorted(self.pivots, composite_keys(records), side="right")
        order = np.argsort(buckets, kind="stable")
        recs, bks = records[order], buckets[order]
        edges = np.searchsorted(bks, np.arange(self.n_buckets + 1))
        vb = self.block_size
        for b in range(self.n_buckets):
            chunk = recs[edges[b] : edges[b + 1]]
            if not chunk.size:
                continue
            self.counts[b] += chunk.size
            self._partials[b].append(chunk)
            self._sizes[b] += chunk.size
            while self._sizes[b] >= vb:
                merged = concat_records(self._partials[b])
                self._partials[b] = [merged[vb:]] if merged.shape[0] > vb else []
                self._sizes[b] -= vb
                self._queue.append((b, merged[:vb], vb))

    def write_rounds(self, drain_below: int = 0) -> None:
        """Write queued blocks round by round until ≤ drain_below remain."""
        while len(self._queue) > drain_below:
            self._round()

    def _round(self) -> None:
        self.rounds += 1
        k = min(len(self._queue), self.n_channels)
        entries = [self._queue.popleft() for _ in range(k)]
        channels = self.rng.integers(0, self.n_channels, size=k)
        taken: set[int] = set()
        items = []
        writers = []
        for (b, block, fill), ch in zip(entries, channels.tolist()):
            if ch in taken:
                self.collisions += 1
                self._queue.append((b, block, fill))
                continue
            taken.add(ch)
            items.append((ch, block))
            writers.append((b, ch, fill))
        if items:
            addrs = self.storage.parallel_write(items)
            for (b, ch, fill), addr in zip(writers, addrs):
                self.chains[b][ch].append(BlockRef(addr, fill))

    def flush(self) -> list[BucketRun]:
        """Pad partial blocks, place everything, return the bucket runs."""
        vb = self.block_size
        for b in range(self.n_buckets):
            if self._sizes[b] > 0:
                tail = concat_records(self._partials[b])
                padded = pad_records(tail, vb)
                self.storage.acquire_memory(padded.shape[0] - tail.shape[0])
                self._partials[b] = []
                for i in range(0, padded.shape[0], vb):
                    fill = min(vb, max(0, tail.shape[0] - i))
                    self._queue.append((b, padded[i : i + vb], fill))
                self._sizes[b] = 0
        self.write_rounds(0)
        return [
            BucketRun(bucket=b, chains=[list(c) for c in self.chains[b]],
                      n_records=int(self.counts[b]))
            for b in range(self.n_buckets)
        ]

    def max_balance_factor(self) -> float:
        """Worst per-bucket (max chain)/(optimal) factor — the random tail."""
        worst = 1.0
        for b in range(self.n_buckets):
            per = [len(c) for c in self.chains[b]]
            total = sum(per)
            if total:
                worst = max(worst, max(per) / -(-total // self.n_channels))
        return worst


def randomized_distribution_sort(
    machine: ParallelDiskMachine,
    records: np.ndarray | None = None,
    *,
    run: OrderedRun | None = None,
    storage: VirtualDisks | None = None,
    virtual_disks: int | None = None,
    buckets: int | None = None,
    rng: np.random.Generator | None = None,
) -> RandomizedSortResult:
    """[ViSa] randomized distribution sort on the PDM machine."""
    if (records is None) == (run is None):
        raise ParameterError("provide exactly one of records / run")
    if storage is None:
        # Randomization needs no partial striping: use all D disks.
        storage = VirtualDisks(machine, virtual_disks or machine.D)
    if run is None:
        run = load_ordered_run(storage, records)
    rng = rng or np.random.default_rng(1729)
    s = buckets or default_bucket_count(machine.M, machine.B)

    state = {"depth": 0, "bf": 1.0}
    output = _sort(machine, storage, run, run.n_records, s, rng, state, 0)
    return RandomizedSortResult(
        output=output,
        n_records=run.n_records,
        io_stats=machine.stats.snapshot(),
        cpu=machine.cpu.snapshot(),
        storage=storage,
        recursion_depth=state["depth"],
        max_balance_factor=state["bf"],
    )


def _sort(machine, storage, run, n, s, rng, state, depth) -> OrderedRun:
    state["depth"] = max(state["depth"], depth)
    vb = storage.virtual_block_size
    if n == 0:
        return OrderedRun(blocks=[], n_records=0)
    if n <= machine.M - (storage.n_virtual + 1) * vb:
        recs = read_run_all(storage, run, free=True)
        return write_ordered_run(storage, cole_merge_sort(machine.cpu, recs))

    reserve = (s + 2 * storage.n_virtual + 1) * vb
    memoryload = machine.M - reserve
    if memoryload < 4 * s:
        raise ParameterError(f"machine too small for S={s} (M={machine.M})")
    pivots = pdm_partition_elements(machine, storage, run, s, memoryload)

    placer = RandomizedPlacer(storage, pivots, rng)
    for chunk in read_run_batches(storage, run, free=True):
        placer.feed(chunk)
        machine.cpu.charge(
            work=chunk.shape[0] * log2_ceil(s), depth=log2_ceil(s), label="partition"
        )
        placer.write_rounds(drain_below=2 * storage.n_virtual)
    bucket_runs = placer.flush()
    state["bf"] = max(state["bf"], placer.max_balance_factor())

    outputs = []
    for brun in bucket_runs:
        if brun.n_records == 0:
            continue
        if brun.n_records >= n:
            raise ParameterError(f"bucket did not shrink ({brun.n_records}/{n})")
        outputs.append(_sort(machine, storage, brun, brun.n_records, s, rng, state, depth + 1))
    return concat_runs(outputs)
