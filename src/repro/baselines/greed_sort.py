"""Greed Sort — Nodine & Vitter's earlier deterministic PDM sort [NoV].

Section 1: "An affirmative answer [to deterministic optimality] was provided
by Nodine and Vitter using an algorithm based on merge sort called Greed
Sort.  Unfortunately, the Greed Sort technique does not seem to yield
optimal sorting bounds on memory hierarchies."

Greed Sort is an R-way merge over *independent* (non-striped) disks whose
signature move is the greedy read schedule: in each parallel I/O, every
disk independently supplies the block most needed by the merge — the block
belonging to the run that is closest to starving.  That schedule is what
lets a merge-based algorithm use all D disks at once without striping and
match the distribution-sort I/O bound on the PDM.

This implementation keeps the greedy per-disk scheduling, the independent-
disk layout, and the R = Θ(M/B) fan-in operationally (every block motion
is a machine I/O under the one-block-per-disk rule), in two flavours:

* ``mode="exact"`` (default) — a forecasted safe-boundary merge whose
  output is exactly sorted per pass; per-run multi-block claims keep wide
  arrays busy;
* ``mode="approximate"`` — the original NoV pipeline shape: emit full
  stripes of the smallest buffered records without waiting for laggards,
  then repair the bounded displacement with a sliding-window cleanup pass.
  The original's displacement bound relies on their precise schedule and
  columnsort-style cleanup, which we do not replicate; our cleanup window
  adapts (doubling within memory) and, if a group's displacement still
  exceeds it, that group deterministically falls back to the exact merge —
  the wasted approximate I/Os stay counted and the fallback is reported in
  ``GreedSortResult.cleanup_fallbacks``.  DESIGN.md §2 records the
  substitution.

The E3 benchmark shows the paper's comparison: Greed Sort matches Balance
Sort's I/O order on disks, while only Balance Sort generalizes to the
hierarchy models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..pdm.machine import ParallelDiskMachine
from ..pdm.striping import VirtualDisks
from ..pram.sorting import cole_merge_sort
from ..records import composite_keys, concat_records
from ..core.streams import (
    OrderedRun,
    load_ordered_run,
    read_run_batches,
    write_ordered_run,
)

__all__ = ["greed_sort", "GreedSortResult"]

#: Max buffered blocks per input run during a merge (forecast lookahead).
RUN_BUFFER_BLOCKS = 2


@dataclass
class GreedSortResult:
    output: OrderedRun
    n_records: int
    io_stats: dict
    cpu: dict
    storage: object
    fan_in: int
    merge_passes: int
    cleanup_fallbacks: int = 0

    @property
    def total_ios(self) -> int:
        return self.io_stats["total_ios"]


def greed_sort(
    machine: ParallelDiskMachine,
    records: np.ndarray | None = None,
    *,
    run: OrderedRun | None = None,
    fan_in: int | None = None,
    mode: str = "exact",
) -> GreedSortResult:
    """Merge sort with greedy per-disk scheduling on independent disks.

    ``mode="exact"`` (default) uses the forecasted safe-boundary merge: the
    output of every pass is exactly sorted, at the price of occasional
    read stalls when a starving run gates emission.  ``mode="approximate"``
    follows the original Greed Sort structure: each pass emits a full
    stripe of the smallest *buffered* records per I/O regardless of
    starving runs — producing an approximately sorted run with bounded
    displacement — and a windowed cleanup pass restores exact order
    (NoV's approximate-merge-then-fix pipeline, with our columnsort-free
    sliding-window cleanup; DESIGN.md §2).
    """
    if mode not in ("exact", "approximate"):
        raise ParameterError(f"mode must be 'exact' or 'approximate', got {mode!r}")
    storage = VirtualDisks(machine, machine.D)  # independent disks: VB = B
    if (records is None) == (run is None):
        raise ParameterError("provide exactly one of records / run")
    if run is None:
        run = load_ordered_run(storage, records)
    n = run.n_records
    b = machine.B
    # Reserve a full-width output buffer; pick the fan-in so every input run
    # can buffer ~4 blocks (the forecast lookahead that keeps all D disks
    # busy), halving it from the bare-minimum 1-block-per-run fan-in.
    budget = machine.M - 2 * machine.D * b
    # Fan-in: high enough to keep merge passes few, low enough that each
    # run can look ahead ~D/2 blocks (otherwise wide arrays idle while the
    # exact merge waits on one starving run — see the E3 notes).
    r = fan_in or max(
        2,
        min(
            budget // (2 * (RUN_BUFFER_BLOCKS + 1) * b),
            budget // ((machine.D // 2 + 1) * b),
        ),
    )
    # Global lookahead budget (in blocks) shared by all runs of a merge,
    # with one reserved block per run so a starving run can always refill.
    cap = max(r + machine.D, budget // b - r)
    if r < 2 or budget <= 0:
        raise ParameterError(f"machine too small for greed sort (M={machine.M}, B={b}, D={machine.D})")
    if fan_in and (r + 1) * b > machine.M:
        raise ParameterError(f"fan-in {fan_in} cannot buffer one block per run in M={machine.M}")

    # --- run formation ----------------------------------------------------
    load_size = machine.M - machine.D * b
    runs: list[OrderedRun] = []
    buffer, buffered = [], 0

    def emit(chunks, size):
        if size == 0:
            return
        load = concat_records(chunks) if len(chunks) > 1 else chunks[0]
        # Stagger each run's round-robin phase so lockstep merging does not
        # ask every run for a block on the same disk (NoV's layout).
        runs.append(
            write_ordered_run(
                storage, cole_merge_sort(machine.cpu, load), start_channel=len(runs)
            )
        )

    for chunk in read_run_batches(storage, run, free=True):
        buffer.append(chunk)
        buffered += chunk.shape[0]
        if buffered >= load_size:
            emit(buffer, buffered)
            buffer, buffered = [], 0
    emit(buffer, buffered)
    if not runs:
        return GreedSortResult(
            output=OrderedRun(blocks=[], n_records=0), n_records=0,
            io_stats=machine.stats.snapshot(), cpu=machine.cpu.snapshot(),
            storage=storage, fan_in=r, merge_passes=0,
        )

    # --- greedy merge passes ----------------------------------------------
    passes = 0
    cleanup_fallbacks = 0
    while len(runs) > 1:
        passes += 1
        merged = []
        for i in range(0, len(runs), r):
            group = runs[i : i + r]
            if mode == "approximate" and len(group) > 1:
                from ..exceptions import InvariantViolation

                approx = _approximate_merge(
                    machine, storage, group, stagger=len(merged), free_source=False
                )
                try:
                    cleaned = _adaptive_cleanup(
                        machine, storage, approx, len(group) * b,
                        stagger=len(merged),
                    )
                except InvariantViolation:
                    # Displacement exceeded what memory can absorb: discard
                    # the approximate output (its I/Os were really spent and
                    # stay counted) and redo this group with the exact merge
                    # — deterministic and always correct.
                    storage.free([ref.address for ref in approx.blocks])
                    cleanup_fallbacks += 1
                    merged.append(
                        _greedy_merge(
                            machine, storage, group, stagger=len(merged), cap=cap,
                        )
                    )
                else:
                    for source in group:
                        storage.free([ref.address for ref in source.blocks])
                    merged.append(cleaned)
            else:
                merged.append(
                    _greedy_merge(
                        machine, storage, group, stagger=len(merged), cap=cap,
                    )
                )
        runs = merged
    return GreedSortResult(
        output=runs[0], n_records=n, io_stats=machine.stats.snapshot(),
        cpu=machine.cpu.snapshot(), storage=storage, fan_in=r, merge_passes=passes,
        cleanup_fallbacks=cleanup_fallbacks,
    )


class _RunCursor:
    """Progress through one input run: buffered records + unread block list."""

    def __init__(self, run: OrderedRun):
        self.pending = list(run.blocks)  # unread BlockRefs, logical order
        self.buffer = None  # np record array or None
        self.buffered_blocks = 0

    @property
    def live(self) -> bool:
        return bool(self.pending) or (self.buffer is not None and self.buffer.size > 0)

    def next_channel(self):
        return self.pending[0].address.vdisk if self.pending else None

    def urgency(self):
        """Merge priority: empty buffer is starving; else last buffered key."""
        if self.buffer is None or self.buffer.size == 0:
            return -1
        return int(composite_keys(self.buffer)[-1])


def _greedy_merge(
    machine, storage, in_runs: list[OrderedRun], stagger: int = 0,
    cap: int = RUN_BUFFER_BLOCKS,
) -> OrderedRun:
    if len(in_runs) == 1:
        return in_runs[0]
    from ..records import strip_pad_records

    cursors = [_RunCursor(rn) for rn in in_runs]
    total = sum(rn.n_records for rn in in_runs)
    machine.cpu.charge(
        work=total * max(1, (len(in_runs) - 1).bit_length()),
        depth=max(1, total.bit_length()),
        label="greed-merge",
    )

    out_parts: list[np.ndarray] = []
    out_blocks = []
    out_count = 0
    vb = storage.virtual_block_size

    full_width = vb * storage.n_virtual

    def flush_output(final=False):
        nonlocal out_parts, out_count
        if not out_parts:
            return
        data = concat_records(out_parts)
        # Write only in full-machine-width batches so every output I/O uses
        # all D disks (tiny trickle writes would serialize the array).
        if not final and data.shape[0] < full_width:
            out_parts = [data]
            return
        cut = data.shape[0] if final else (data.shape[0] // vb) * vb
        if cut == 0:
            out_parts = [data]
            return
        # continue this run's round-robin phase across flushes
        written = write_ordered_run(
            storage, data[:cut], start_channel=stagger + len(out_blocks)
        )
        out_blocks.extend(written.blocks)
        out_count += cut
        out_parts = [data[cut:]] if cut < data.shape[0] else []

    total_buffered = 0
    while any(c.live for c in cursors):
        # --- greedy read: each disk supplies the most-starving run's block.
        # Non-starving runs may prefetch only while the shared lookahead
        # budget has room; a starving (empty-buffer) run may always read —
        # that headroom is what makes emission progress unconditional.
        # Runs are served most-urgent-first (starving runs ahead of all);
        # each run may claim several of its *consecutive* next blocks in one
        # I/O — a run's blocks sit on consecutive disks (round-robin), so a
        # freshly drained run refills at near-full width.
        room = max(0, cap - total_buffered)
        claims: list[tuple[_RunCursor, int]] = []  # (cursor, how many blocks)
        claimed_channels: set[int] = set()
        for c in sorted((c for c in cursors if c.pending), key=_RunCursor.urgency):
            starving = c.buffer is None or c.buffer.size == 0
            # a starving run may take one block even when over budget
            max_take = max(1, room) if starving else room
            max_take = min(max_take, len(c.pending))
            k = 0
            while k < max_take and c.pending[k].address.vdisk not in claimed_channels:
                claimed_channels.add(c.pending[k].address.vdisk)
                k += 1
            if k:
                claims.append((c, k))
                room -= k
        if claims:
            refs = [c.pending[i] for c, k in claims for i in range(k)]
            addresses = [r.address for r in refs]
            blocks = storage.parallel_read_arr(addresses, free=True)
            bi = 0
            for c, k in claims:
                parts = [] if c.buffer is None or c.buffer.size == 0 else [c.buffer]
                for _ in range(k):
                    c.pending.pop(0)
                    block = strip_pad_records(blocks[bi])
                    bi += 1
                    n_pad = vb - block.shape[0]
                    if n_pad:
                        storage.release_memory(n_pad)
                    parts.append(block)
                c.buffer = parts[0] if len(parts) == 1 else concat_records(parts)
                c.buffered_blocks += k
                total_buffered += k

        # --- emit the safe prefix -----------------------------------------
        live = [c for c in cursors if c.live]
        if not live:
            break
        if any(c.buffer is None or c.buffer.size == 0 for c in live):
            continue  # a starving run blocks emission; keep reading
        # Keep the boundary in uint64: mixing a Python int into uint64
        # comparisons makes NumPy promote to float64, which cannot represent
        # 62-bit composite keys exactly.
        boundary = np.uint64(min(int(composite_keys(c.buffer)[-1]) for c in live))
        emit_parts = []
        for c in live:
            ck = composite_keys(c.buffer)
            cut = int(np.searchsorted(ck, boundary, side="right"))
            if cut:
                emit_parts.append(c.buffer[:cut])
                c.buffer = c.buffer[cut:]
                total_buffered -= c.buffered_blocks
                c.buffered_blocks = -(-int(c.buffer.shape[0]) // vb)
                total_buffered += c.buffered_blocks
        block = concat_records(emit_parts)
        out_parts.append(block[np.argsort(composite_keys(block), kind="stable")])
        flush_output()
    flush_output(final=True)
    return OrderedRun(blocks=out_blocks, n_records=out_count)


def _approximate_merge(
    machine, storage, in_runs: list[OrderedRun], stagger: int = 0,
    free_source: bool = True,
) -> OrderedRun:
    """The original Greed Sort move: merge approximately, at full bandwidth.

    Per iteration one parallel read fetches, from every disk that has one,
    the most promising unread block (smallest forecast = the reading run's
    last-seen key), and one parallel write emits a full stripe of the
    smallest *buffered* records — even if a lagging run still holds smaller
    unread keys.  No stalls, so wide arrays stay busy; the price is bounded
    displacement in the output, which :func:`_cleanup_pass` removes.
    """
    from ..records import strip_pad_records

    vb = storage.virtual_block_size
    width = vb * storage.n_virtual  # records per full-stripe write
    cursors = [_RunCursor(rn) for rn in in_runs]
    total = sum(rn.n_records for rn in in_runs)
    machine.cpu.charge(
        work=total * max(1, (len(in_runs) - 1).bit_length()),
        depth=max(1, total.bit_length()),
        label="greed-approx-merge",
    )

    buffered: list[np.ndarray] = []
    buffered_n = 0
    out_blocks = []
    out_count = 0
    # keep total buffering within M/2: reads pause when the merge runs ahead
    buffer_cap = max(2 * width, machine.M // 2)

    def emit_stripe(limit_key: int | None, force: bool, final: bool = False) -> None:
        """Write out buffered records: the safe prefix (≤ limit_key), padded
        to full stripes by force-emitting under memory pressure."""
        nonlocal buffered, buffered_n, out_count
        if buffered_n == 0:
            return
        data = concat_records(buffered) if len(buffered) > 1 else buffered[0]
        data = data[np.argsort(composite_keys(data), kind="stable")]
        if final:
            take = buffered_n
        else:
            ck = composite_keys(data)
            safe = int(np.searchsorted(ck, np.uint64(limit_key), side="right")) if limit_key is not None else 0
            take = (safe // width) * width
            if take == 0 and force:
                take = min(width, buffered_n)  # forced: displacement risk
        if take == 0:
            buffered = [data]
            buffered_n = int(data.shape[0])
            return
        head, tail = data[:take], data[take:]
        written = write_ordered_run(
            storage, head, start_channel=stagger + len(out_blocks)
        )
        out_blocks.extend(written.blocks)
        out_count += head.shape[0]
        buffered = [tail] if tail.size else []
        buffered_n = int(tail.shape[0])

    while any(c.live for c in cursors) or buffered_n:
        # --- read phase: one block per disk, by forecast urgency ----------
        # (forecast = the run's last key seen so far; its buffered records
        # move straight to the shared pool, so the forecast lives on _last)
        # Most-urgent-first, multi-block claims: a run whose blocks sit on
        # consecutive disks (round-robin layout) may fetch several in one
        # I/O — essential when fewer runs than disks remain, or the
        # laggard's input rate cannot keep up with the output stripe.
        # Over budget only *unwarmed* runs read (one block each): emission
        # cannot start until every run has contributed its first block, so
        # those reads must never be gated by the pool.
        over_budget = buffered_n >= buffer_cap
        if True:
            claims: list[tuple[_RunCursor, int]] = []
            claimed: set[int] = set()
            for c in sorted(
                (c for c in cursors if c.pending),
                key=lambda c: getattr(c, "_last", -1),
            ):
                unwarmed = not hasattr(c, "_last")
                if over_budget and not unwarmed:
                    continue
                max_k = 1 if (over_budget or unwarmed) else len(c.pending)
                k = 0
                while (
                    k < min(max_k, len(c.pending))
                    and c.pending[k].address.vdisk not in claimed
                ):
                    claimed.add(c.pending[k].address.vdisk)
                    k += 1
                if k:
                    claims.append((c, k))
            if claims:
                refs = [c.pending[i] for c, k in claims for i in range(k)]
                addresses = [ref.address for ref in refs]
                blocks = storage.parallel_read_arr(addresses, free=free_source)
                bi = 0
                for c, k in claims:
                    parts = [] if c.buffer is None or c.buffer.size == 0 else [c.buffer]
                    for _ in range(k):
                        c.pending.pop(0)
                        block = strip_pad_records(blocks[bi])
                        bi += 1
                        n_pad = vb - block.shape[0]
                        if n_pad:
                            storage.release_memory(n_pad)
                        parts.append(block)
                    c.buffer = parts[0] if len(parts) == 1 else concat_records(parts)
            # move every cursor's buffered records into the shared pool,
            # remembering the last key as the run's forecast floor
            for c in cursors:
                if c.buffer is not None and c.buffer.size:
                    c._last = int(composite_keys(c.buffer)[-1])
                    buffered.append(c.buffer)
                    buffered_n += int(c.buffer.shape[0])
                    c.buffer = None
        # --- write phase ---------------------------------------------------
        # Safe limit: nothing below the least-advanced run's frontier can
        # still arrive, so records ≤ that key are exactly placed.  Under
        # memory pressure a stripe is forced out anyway (the displacement
        # the cleanup pass exists to fix).  No emission until every run has
        # contributed its first block (warm-up), or the first stripe could
        # miss whole runs.
        warmed = all(hasattr(c, "_last") or not c.pending for c in cursors)
        if not any(c.live for c in cursors):
            emit_stripe(None, force=True, final=True)
        elif warmed:
            with_pending = [getattr(c, "_last", -1) for c in cursors if c.pending]
            limit = min(with_pending) if with_pending else None
            emit_stripe(limit, force=buffered_n >= buffer_cap)
    return OrderedRun(blocks=out_blocks, n_records=out_count)


def _adaptive_cleanup(
    machine, storage, run: OrderedRun, base_window: int, stagger: int = 0
) -> OrderedRun:
    """Cleanup with window doubling: retry until the displacement fits.

    The original Greed Sort proves a displacement bound for its exact read
    schedule; our operational schedule keeps the structure but not the
    proof, so the cleanup window adapts: start at ``2·R·B``, double on
    failure (each failed attempt's partial output is discarded, its I/Os —
    honestly — remain counted), give up at ``M/3`` (memory must hold the
    sliding pool plus an output stripe).
    """
    from ..exceptions import InvariantViolation

    window = 2 * base_window
    limit = max(window, machine.M // 3)
    while True:
        final_attempt = window >= limit
        try:
            out = _cleanup_pass(
                machine, storage, run, window, free_source=False,
                stagger=stagger,
            )
        except InvariantViolation:
            if final_attempt:
                raise  # caller decides (greed_sort falls back to exact merge)
            window = min(2 * window, limit)
            continue
        storage.free([ref.address for ref in run.blocks])
        return out


def _cleanup_pass(
    machine, storage, run: OrderedRun, window: int, free_source: bool = True,
    stagger: int = 0,
) -> OrderedRun:
    """Restore exact order in an approximately sorted run (one stream).

    A sliding sorted buffer of ``window`` records absorbs the bounded
    displacement the approximate merge introduces; records leave the buffer
    only once ``window`` records larger than them have arrived, so any
    record displaced by less than ``window`` positions lands correctly.
    Raises :class:`~repro.exceptions.InvariantViolation` if a record turns
    out to be displaced further; on failure any partially written output is
    discarded (its I/Os stay counted, as they were really performed).
    """
    from ..exceptions import InvariantViolation
    from ..records import RECORD_DTYPE

    pool = np.empty(0, dtype=RECORD_DTYPE)
    out_blocks = []
    out_count = 0
    last_emitted = -1
    vb = storage.virtual_block_size
    pending_out: list[np.ndarray] = []
    pending_n = 0
    held = 0  # records read but not yet written (ledger bookkeeping)

    def flush_out(final: bool = False) -> None:
        nonlocal pending_out, pending_n, out_count, held
        width = vb * storage.n_virtual
        take = pending_n if final else (pending_n // width) * width
        if take == 0:
            return
        data = concat_records(pending_out) if len(pending_out) > 1 else pending_out[0]
        head, tail = data[:take], data[take:]
        written = write_ordered_run(
            storage, head, start_channel=stagger + len(out_blocks)
        )
        out_blocks.extend(written.blocks)
        out_count += head.shape[0]
        held -= int(head.shape[0])
        pending_out = [tail] if tail.size else []
        pending_n = int(tail.shape[0]) if tail.size else 0

    def emit(records: np.ndarray) -> None:
        nonlocal last_emitted, pending_out, pending_n
        if records.size == 0:
            return
        ck = composite_keys(records)
        if last_emitted >= 0 and int(ck[0]) < last_emitted:
            raise InvariantViolation(
                "cleanup window too small: displacement exceeded the NoV bound"
            )
        last_emitted = int(ck[-1])
        pending_out.append(records)
        pending_n += int(records.shape[0])
        flush_out()

    try:
        for chunk in read_run_batches(storage, run, free=free_source):
            held += int(chunk.shape[0])
            merged = concat_records([pool, chunk])
            merged = merged[np.argsort(composite_keys(merged), kind="stable")]
            if merged.shape[0] > window:
                emit(merged[: merged.shape[0] - window])
                pool = merged[merged.shape[0] - window :]
            else:
                pool = merged
        emit(pool)
        flush_out(final=True)
    except InvariantViolation:
        # discard the partial output and release everything still held
        storage.free([ref.address for ref in out_blocks])
        storage.release_memory(held)
        raise
    return OrderedRun(blocks=out_blocks, n_records=out_count)
