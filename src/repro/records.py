"""Record representation for external sorting.

The paper (Section 4.1) assumes the ``N`` keys are distinct and notes that
"this assumption is easily realizable by appending to each key the record's
initial location".  We implement exactly that: a record is a ``(key, rid)``
pair where ``rid`` is the record's position in the original input.  The sort
order is lexicographic on ``(key, rid)``, which is a total order even when
keys repeat, and stability of the overall sort follows for free.

Records are stored as NumPy structured arrays (dtype :data:`RECORD_DTYPE`)
so that the simulators can slice them into blocks without copying and so the
vectorized idioms recommended by the scientific-Python guides apply.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RECORD_DTYPE",
    "PAD_KEY",
    "make_records",
    "empty_records",
    "composite_keys",
    "sort_records",
    "argsort_records",
    "merge_records",
    "searchsorted_records",
    "records_equal",
    "pad_records",
    "strip_pad_records",
    "concat_records",
]

#: Structured dtype of one record: the sort key and the record id (initial
#: location, which doubles as the payload identity for permutation checks).
RECORD_DTYPE = np.dtype([("key", np.uint64), ("rid", np.uint64)])

#: Number of low bits reserved for the rid when packing a composite key.
_RID_BITS = 24
_RID_MASK = np.uint64((1 << _RID_BITS) - 1)


def make_records(keys: np.ndarray) -> np.ndarray:
    """Build a record array from raw keys, appending initial locations.

    Parameters
    ----------
    keys:
        1-D integer array.  Values are taken modulo 2**64.

    Returns
    -------
    numpy.ndarray
        Structured array of dtype :data:`RECORD_DTYPE` with ``rid`` equal to
        each key's index in ``keys``.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    out = np.empty(keys.shape[0], dtype=RECORD_DTYPE)
    out["key"] = keys.astype(np.uint64, copy=False)
    out["rid"] = np.arange(keys.shape[0], dtype=np.uint64)
    return out


def empty_records(n: int) -> np.ndarray:
    """Allocate an uninitialized record array of length ``n``."""
    return np.empty(n, dtype=RECORD_DTYPE)


def composite_keys(records: np.ndarray) -> np.ndarray:
    """Pack ``(key, rid)`` into a single uint64 for fast comparisons.

    Only valid when ``rid < 2**24`` and ``key < 2**40`` — the workload
    generators in :mod:`repro.workloads` stay inside this range.  The packing
    preserves lexicographic order of ``(key, rid)``.
    """
    key = records["key"]
    rid = records["rid"]
    if key.size and int(key.max()) >= (1 << (64 - _RID_BITS)):
        raise ValueError("keys too large to pack with rid tie-break")
    if rid.size and int(rid.max()) >= (1 << _RID_BITS):
        raise ValueError("rid too large to pack (input longer than 2**24?)")
    return (key << np.uint64(_RID_BITS)) | (rid & _RID_MASK)


def argsort_records(records: np.ndarray) -> np.ndarray:
    """Indices that sort ``records`` by ``(key, rid)`` lexicographically."""
    # np.lexsort sorts by the *last* key first.
    return np.lexsort((records["rid"], records["key"]))


def sort_records(records: np.ndarray) -> np.ndarray:
    """Return a new record array sorted by ``(key, rid)``."""
    return records[argsort_records(records)]


def merge_records(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two record arrays that are each sorted by ``(key, rid)``."""
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    ka = composite_keys(a)
    kb = composite_keys(b)
    out = np.empty(a.size + b.size, dtype=RECORD_DTYPE)
    # positions of b's elements within the merged output
    pos_b = np.searchsorted(ka, kb, side="left") + np.arange(b.size)
    mask = np.zeros(out.size, dtype=bool)
    mask[pos_b] = True
    out[mask] = b
    out[~mask] = a
    return out


def searchsorted_records(sorted_records: np.ndarray, probes: np.ndarray) -> np.ndarray:
    """``np.searchsorted`` on the composite (key, rid) order."""
    return np.searchsorted(
        composite_keys(sorted_records), composite_keys(probes), side="left"
    )


#: Sentinel key/rid marking padding records in partially filled blocks.
PAD_KEY = np.uint64(np.iinfo(np.uint64).max)


def pad_records(records: np.ndarray, multiple: int) -> np.ndarray:
    """Pad with sentinel records up to a (non-zero) multiple of ``multiple``."""
    n = records.shape[0]
    rem = n % multiple
    if rem == 0 and n > 0:
        return records
    pad_n = multiple - rem if n > 0 else multiple
    out = np.empty(n + pad_n, dtype=RECORD_DTYPE)
    out[:n] = records
    out[n:]["key"] = PAD_KEY
    out[n:]["rid"] = PAD_KEY
    return out


def strip_pad_records(records: np.ndarray) -> np.ndarray:
    """Remove sentinel padding records."""
    mask = ~((records["key"] == PAD_KEY) & (records["rid"] == PAD_KEY))
    return records[mask]


def concat_records(parts) -> np.ndarray:
    """Concatenate record arrays without ``np.concatenate``'s dtype work.

    ``np.concatenate`` on structured arrays routes through NumPy's field
    promotion machinery (``_promote_fields``), which costs microseconds per
    call — material on the simulators' hot paths where tens of thousands of
    tiny batches are merged.  A preallocated ``np.empty`` plus slice
    assignment produces the byte-identical result for free.  Always returns
    a fresh array (even for a single part), matching ``np.concatenate``.
    """
    parts = list(parts)
    if not parts:
        return np.empty(0, dtype=RECORD_DTYPE)
    total = 0
    for p in parts:
        total += p.shape[0]
    out = np.empty(total, dtype=RECORD_DTYPE)
    pos = 0
    for p in parts:
        n = p.shape[0]
        out[pos : pos + n] = p
        pos += n
    return out


def records_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """True when two record arrays are elementwise identical."""
    return bool(
        a.shape == b.shape
        and np.array_equal(a["key"], b["key"])
        and np.array_equal(a["rid"], b["rid"])
    )
