"""Operational bitonic sort on the hypercube, one value per processor.

Batcher's bitonic sorter maps perfectly onto a hypercube: stage ``(i, j)``
(``0 ≤ j ≤ i < d``) compare-exchanges each node with its neighbor across
dimension ``j``, keeping the minimum at the node whose bit pattern says
"ascending".  Every compare-exchange is a genuine
:meth:`~repro.hypercube.network.Hypercube.exchange_dim` call, so the
network's ``comm_steps`` counter equals the textbook ``d(d+1)/2`` after a
full sort — the tests assert exactly that.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TopologyError
from ..records import RECORD_DTYPE, composite_keys
from .network import Hypercube

__all__ = ["bitonic_sort", "bitonic_step_count"]


def bitonic_step_count(h: int) -> int:
    """Compare-exchange steps of a full bitonic sort on ``h = 2^d`` nodes."""
    d = h.bit_length() - 1
    return d * (d + 1) // 2


def bitonic_sort(network: Hypercube, values: np.ndarray, descending: bool = False) -> np.ndarray:
    """Sort one value per processor using the bitonic network.

    Record arrays sort in composite (key, rid) order; a permutation is
    carried alongside so the original records are returned in sorted order.
    """
    h = network.processors
    if values.shape[0] != h:
        raise TopologyError(f"need exactly one value per node ({h}), got {values.shape[0]}")
    if values.dtype == RECORD_DTYPE:
        keys = composite_keys(values).copy()
    else:
        keys = np.asarray(values).copy()
    perm = np.arange(h)
    node = np.arange(h)

    for i in range(network.dimension):
        for j in range(i, -1, -1):
            # One message carries (key, perm) together: a single exchange.
            packet = np.stack([keys, perm.astype(keys.dtype)], axis=1)
            partner = network.exchange_dim(packet, j)
            partner_keys = partner[:, 0]
            partner_perm = partner[:, 1].astype(perm.dtype)
            # Direction: ascending block if bit (i+1) of node id is 0.
            ascending = (node & (1 << (i + 1))) == 0
            if descending:
                ascending = ~ascending
            is_low = (node & (1 << j)) == 0
            keep_min = ascending == is_low
            take_partner = np.where(
                keep_min, partner_keys < keys, partner_keys > keys
            )
            keys = np.where(take_partner, partner_keys, keys)
            perm = np.where(take_partner, partner_perm, perm)
            network.charge_compute(1)

    return values[perm]
