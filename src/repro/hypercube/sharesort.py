"""Charged ``T(H)`` models for hypercube sorting.

Theorems 2 and 3 express hypercube bounds via ``T(H)``, "the time needed to
sort H items on an H-processor hypercube", quoting
``T(H) = O(log H (log log H)²)`` — the deterministic Sharesort of Cypher and
Plaxton [CyP] — and ``O(log H log log H)`` when precomputation is allowed
(Section 4.3).  Reimplementing Sharesort is out of scope (DESIGN.md §7);
these charged models supply the ``T(H)`` the theorems consume, and the
operational :func:`~repro.hypercube.bitonic.bitonic_sort`
(``T(H) = O(log² H)``) is available when step-exact execution matters.
"""

from __future__ import annotations

import math

import numpy as np

from ..records import RECORD_DTYPE, argsort_records
from .network import Hypercube

__all__ = ["T_H", "sharesort_time", "sharesort"]

#: Constant factor for the charged Sharesort time.
SHARESORT_CONSTANT = 1


def _loglog(h: int) -> float:
    lg = max(1.0, math.log2(max(h, 2)))
    return max(1.0, math.log2(max(lg, 2.0)))


def T_H(h: int, precomputation: bool = False, interconnect: str = "hypercube") -> float:
    """The paper's ``T(H)``: PRAM ``log H``; hypercube Sharesort bounds.

    Parameters
    ----------
    h:
        Number of processors (= items sorted).
    precomputation:
        Hypercube only: ``O(log H log log H)`` when allowed (Section 4.3).
    interconnect:
        ``"pram"`` gives Cole's ``T(H) = O(log H)``.
    """
    lg = max(1.0, math.log2(max(h, 2)))
    if interconnect == "pram":
        return lg
    ll = _loglog(h)
    if precomputation:
        return SHARESORT_CONSTANT * lg * ll
    return SHARESORT_CONSTANT * lg * ll * ll


def sharesort_time(h: int, precomputation: bool = False) -> float:
    """Alias for ``T_H(h)`` on a hypercube."""
    return T_H(h, precomputation=precomputation)


def sharesort(network: Hypercube, values: np.ndarray) -> np.ndarray:
    """Sort one value per node, charging the Sharesort ``T(H)`` step count.

    The data motion is performed directly (NumPy sort); the network is
    charged ``ceil(T(H))`` communication steps — the substitution documented
    in DESIGN.md §2.
    """
    h = network.processors
    if values.shape[0] != h:
        raise ValueError(f"need one value per node ({h})")
    network.comm_steps += int(math.ceil(T_H(h)))
    network.messages += h * int(math.ceil(_loglog(h)))
    if values.dtype == RECORD_DTYPE:
        return values[argsort_records(values)]
    return np.sort(values)
