"""Hypercube topology with communication-step accounting.

An ``H = 2^d`` node hypercube connects processors whose ids differ in one
bit.  All communication in this simulator goes through
:meth:`Hypercube.exchange_dim` (every node swaps a value with its neighbor
across one dimension — the primitive that bitonic sort, dimension-ordered
routing, and tree reductions are built from), so adjacency is enforced by
construction and ``comm_steps``/``messages`` count exactly the network's
activity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ParameterError, TopologyError

__all__ = ["Hypercube"]


@dataclass
class Hypercube:
    """An ``H``-processor hypercube (``H`` a power of two).

    Attributes
    ----------
    comm_steps:
        Number of parallel communication steps executed (each step uses each
        link at most once).
    messages:
        Total point-to-point messages sent.
    compute_steps:
        Local computation steps charged alongside communication.
    """

    processors: int
    comm_steps: int = 0
    messages: int = 0
    compute_steps: int = 0
    _log: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        h = self.processors
        if h < 1 or (h & (h - 1)) != 0:
            raise ParameterError(f"hypercube size must be a power of two, got {h}")
        self.dimension = int(math.log2(h))

    # -- topology ---------------------------------------------------------

    def neighbor(self, node: int, dim: int) -> int:
        """Neighbor of ``node`` across dimension ``dim``."""
        self._check_node(node)
        self._check_dim(dim)
        return node ^ (1 << dim)

    def are_adjacent(self, a: int, b: int) -> bool:
        """True when nodes a and b differ in exactly one bit."""
        self._check_node(a)
        self._check_node(b)
        x = a ^ b
        return x != 0 and (x & (x - 1)) == 0

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.processors:
            raise TopologyError(f"node {node} out of range [0, {self.processors})")

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < self.dimension:
            raise TopologyError(f"dimension {dim} out of range [0, {self.dimension})")

    # -- communication primitives ------------------------------------------

    def exchange_dim(self, values: np.ndarray, dim: int) -> np.ndarray:
        """One parallel step: every node receives its dim-neighbor's value.

        ``values[i]`` is node i's datum; the returned array holds, at
        position i, the value previously at ``i XOR 2^dim``.
        """
        self._check_dim(dim)
        if values.shape[0] != self.processors:
            raise TopologyError(
                f"expected one value per node ({self.processors}), got {values.shape[0]}"
            )
        idx = np.arange(self.processors) ^ (1 << dim)
        self.comm_steps += 1
        self.messages += self.processors
        return values[idx]

    def send(self, src: int, dst: int, value):
        """Point-to-point send along one link (must be adjacent): one step."""
        if not self.are_adjacent(src, dst):
            raise TopologyError(f"nodes {src} and {dst} are not hypercube-adjacent")
        self.comm_steps += 1
        self.messages += 1
        return value

    def charge_compute(self, steps: int = 1) -> None:
        """Charge local computation time (uniform across nodes)."""
        self.compute_steps += int(steps)

    # -- collectives (built from dimension exchanges) -----------------------

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum over all nodes via d dimension-exchange rounds."""
        acc = np.asarray(values).copy()
        for dim in range(self.dimension):
            acc = acc + self.exchange_dim(acc, dim)
            self.charge_compute(1)
        return acc

    def broadcast(self, root: int, value):
        """Broadcast from root along a binomial tree: d comm steps."""
        self._check_node(root)
        self.comm_steps += self.dimension
        self.messages += self.processors - 1
        return np.full(self.processors, value)

    def reset(self) -> None:
        """Zero all counters."""
        self.comm_steps = 0
        self.messages = 0
        self.compute_steps = 0
        self._log.clear()

    def snapshot(self) -> dict:
        """Current counters as a plain dict (for reporting)."""
        return {
            "processors": self.processors,
            "comm_steps": self.comm_steps,
            "messages": self.messages,
            "compute_steps": self.compute_steps,
        }
