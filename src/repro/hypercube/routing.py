"""Monotone routing on the hypercube.

The paper routes virtual blocks between hierarchies by "sorting according
to destination address and doing monotone routing [Lei, Section 3.4.3]"
(Algorithm 6, line 4; Algorithm 3, step 9).  A monotone (order-preserving)
packed routing instance runs in ``O(log H)`` communication steps on a
hypercube using the ascend/descend greedy strategy: in step ``k`` each
packet crosses dimension ``k`` if its destination differs there.  Because
sources and destinations are both increasing, no link congests (Leighton's
analysis), so we execute the dimension-ordered movement and charge exactly
``d = log H`` communication steps.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TopologyError
from .network import Hypercube

__all__ = ["monotone_route"]


def monotone_route(network: Hypercube, values: np.ndarray, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Route ``values[src[i]]`` held at node ``src[i]`` to node ``dst[i]``.

    ``src`` and ``dst`` must be strictly increasing (a monotone instance);
    values at non-source nodes are returned unchanged at nodes receiving no
    packet... more precisely the returned array holds, for each node, the
    packet delivered to it, or the node's original value when no packet
    arrives.  Charges ``log H`` communication steps (dimension-ordered).
    """
    src = np.asarray(src)
    dst = np.asarray(dst)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have equal length")
    if src.size > 1 and (np.any(np.diff(src) <= 0) or np.any(np.diff(dst) <= 0)):
        raise ValueError("not a monotone routing instance")
    h = network.processors
    if values.shape[0] != h:
        raise TopologyError(f"need one value per node ({h})")
    if src.size and (src.min() < 0 or src.max() >= h or dst.min() < 0 or dst.max() >= h):
        raise TopologyError("route endpoints out of range")

    # Dimension-ordered greedy movement (executed to keep the data motion
    # honest; congestion-freeness for monotone instances is Leighton's
    # theorem, so the step charge is the d communication rounds).
    out = values.copy()
    out[dst] = values[src]
    network.comm_steps += network.dimension
    # Each packet traverses popcount(src XOR dst) links.
    if src.size:
        hops = np.bitwise_count((src ^ dst).astype(np.uint64))
        network.messages += int(hops.sum())
    return out
