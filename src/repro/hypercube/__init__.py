"""Hypercube interconnect substrate.

Theorems 2 and 3 give hypercube bounds in terms of ``T(H)``, the time to
sort ``H`` items on an ``H``-processor hypercube, for which the best known
deterministic value is ``O(log H (log log H)²)`` (Cypher–Plaxton Sharesort
[CyP]) — ``O(log H log log H)`` with precomputation.  This package provides:

* :class:`~repro.hypercube.network.Hypercube` — the topology with per-step
  communication accounting and adjacency enforcement;
* :mod:`~repro.hypercube.bitonic` — an operational bitonic sorter whose
  every compare-exchange step crosses a real hypercube dimension;
* :mod:`~repro.hypercube.routing` — monotone routing;
* :mod:`~repro.hypercube.sharesort` — the charged ``T(H)`` cost models.
"""

from .network import Hypercube
from .bitonic import bitonic_sort
from .routing import monotone_route
from .sharesort import sharesort_time, sharesort, T_H

__all__ = ["Hypercube", "bitonic_sort", "monotone_route", "sharesort_time", "sharesort", "T_H"]
