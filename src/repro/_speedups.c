/* C hot-path kernels for the "compiled" backend (repro.core.kernels).
 *
 * Three independent pieces, each with a pure-Python twin that remains the
 * reference semantics:
 *
 * RoundOps
 *     The incremental Balance-matrices bookkeeping
 *     (BalanceMatrices.add_block / remove_block / _update_row /
 *     channels_with_two / the refresh_aux sync check) operating directly
 *     on the *same* Python containers the pure path maintains: the X/A
 *     int64 ndarrays (via the buffer protocol), the _xrows/_alist plain
 *     list mirrors, the 2-cell index sets and the per-bucket factor
 *     list.  Because every structure is shared, the Python-side readers
 *     (bucket_with_two, MatchingInstance.from_matrices, the invariant
 *     checks, ablation tampering) see bit-identical state at every
 *     step, and dropping the RoundOps object at any point degrades to
 *     the pure path mid-run without a resync.
 *
 * group_indices
 *     The small-track feed grouping (BalanceEngine.feed's insertion-
 *     ordered bucket -> index-list dict), for int64 bucket-id arrays.
 *
 * dumps
 *     A canonical-JSON encoder for plain scalar trees, byte-identical
 *     to json.dumps(obj, separators=(",", ":"), sort_keys=...) with
 *     ensure_ascii (the default).  Raises TypeError on any value
 *     outside {dict, list, tuple, str, int, float, bool, None} (exact
 *     types only) so callers can fall back to the stdlib encoder.
 *
 * Everything here holds the GIL; no threads, no releases.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

/* ====================================================================== */
/* RoundOps                                                               */
/* ====================================================================== */

typedef struct {
    PyObject_HEAD
    PyObject *xobj;      /* the X ndarray (buffer owner)                  */
    PyObject *aobj;      /* the A ndarray                                 */
    Py_buffer xbuf;      /* int64, 2D, C-contiguous, writable             */
    Py_buffer abuf;
    int bufs_held;
    PyObject *xrows;     /* list[list[int]]  — shared with BalanceMatrices */
    PyObject *alist;     /* list[list[int]]                                */
    PyObject *twos;      /* set[(b, h)]                                    */
    PyObject *over;      /* set[(b, h)]                                    */
    PyObject *factors;   /* list[float]                                    */
    Py_ssize_t S, H, rank;
} RoundOpsObject;

static int
_check_i64_2d(Py_buffer *buf, const char *name)
{
    if (buf->ndim != 2) {
        PyErr_Format(PyExc_ValueError, "%s must be 2-D", name);
        return -1;
    }
    if (buf->itemsize != 8) {
        PyErr_Format(PyExc_ValueError, "%s must be int64", name);
        return -1;
    }
    if (buf->format != NULL && strcmp(buf->format, "l") != 0
        && strcmp(buf->format, "q") != 0) {
        PyErr_Format(PyExc_ValueError, "%s must be int64 (format %s)",
                     name, buf->format);
        return -1;
    }
    if (buf->strides[1] != 8 || buf->strides[0] != 8 * buf->shape[1]) {
        PyErr_Format(PyExc_ValueError, "%s must be C-contiguous", name);
        return -1;
    }
    return 0;
}

static int
RoundOps_init(RoundOpsObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *x, *a, *xrows, *alist, *twos, *over, *factors;
    Py_ssize_t rank;
    if (!PyArg_ParseTuple(args, "OOO!O!O!O!O!n",
                          &x, &a,
                          &PyList_Type, &xrows, &PyList_Type, &alist,
                          &PySet_Type, &twos, &PySet_Type, &over,
                          &PyList_Type, &factors, &rank))
        return -1;
    if (PyObject_GetBuffer(x, &self->xbuf,
                           PyBUF_STRIDES | PyBUF_FORMAT | PyBUF_WRITABLE) < 0)
        return -1;
    if (PyObject_GetBuffer(a, &self->abuf,
                           PyBUF_STRIDES | PyBUF_FORMAT | PyBUF_WRITABLE) < 0) {
        PyBuffer_Release(&self->xbuf);
        return -1;
    }
    self->bufs_held = 1;
    if (_check_i64_2d(&self->xbuf, "X") < 0 || _check_i64_2d(&self->abuf, "A") < 0)
        return -1;
    self->S = self->xbuf.shape[0];
    self->H = self->xbuf.shape[1];
    if (self->abuf.shape[0] != self->S || self->abuf.shape[1] != self->H) {
        PyErr_SetString(PyExc_ValueError, "A shape mismatch with X");
        return -1;
    }
    if (PyList_GET_SIZE(xrows) != self->S || PyList_GET_SIZE(alist) != self->S
        || PyList_GET_SIZE(factors) != self->S) {
        PyErr_SetString(PyExc_ValueError, "mirror list length mismatch with X");
        return -1;
    }
    if (rank < 1 || rank > self->H) {
        PyErr_SetString(PyExc_ValueError, "rank out of range");
        return -1;
    }
    if (self->H > 4096) {
        PyErr_SetString(PyExc_ValueError, "H' too large for compiled ops");
        return -1;
    }
    Py_INCREF(x);      self->xobj = x;
    Py_INCREF(a);      self->aobj = a;
    Py_INCREF(xrows);  self->xrows = xrows;
    Py_INCREF(alist);  self->alist = alist;
    Py_INCREF(twos);   self->twos = twos;
    Py_INCREF(over);   self->over = over;
    Py_INCREF(factors); self->factors = factors;
    self->rank = rank;
    return 0;
}

static void
RoundOps_dealloc(RoundOpsObject *self)
{
    if (self->bufs_held) {
        PyBuffer_Release(&self->xbuf);
        PyBuffer_Release(&self->abuf);
        self->bufs_held = 0;
    }
    Py_XDECREF(self->xobj);
    Py_XDECREF(self->aobj);
    Py_XDECREF(self->xrows);
    Py_XDECREF(self->alist);
    Py_XDECREF(self->twos);
    Py_XDECREF(self->over);
    Py_XDECREF(self->factors);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static inline int64_t *
_xrow(RoundOpsObject *self, Py_ssize_t b)
{
    return (int64_t *)((char *)self->xbuf.buf + b * self->xbuf.strides[0]);
}

static inline int64_t *
_arow(RoundOpsObject *self, Py_ssize_t b)
{
    return (int64_t *)((char *)self->abuf.buf + b * self->abuf.strides[0]);
}

/* Move `cell` between the 2-cell index sets exactly as _update_row does. */
static int
_shift_cell(RoundOpsObject *self, Py_ssize_t b, Py_ssize_t h,
            long old, long a)
{
    PyObject *cell, *bo, *ho;
    int rc = 0;
    if (old < 2 && a < 2)
        return 0;
    bo = PyLong_FromSsize_t(b);
    ho = PyLong_FromSsize_t(h);
    if (bo == NULL || ho == NULL) {
        Py_XDECREF(bo); Py_XDECREF(ho);
        return -1;
    }
    cell = PyTuple_Pack(2, bo, ho);
    Py_DECREF(bo); Py_DECREF(ho);
    if (cell == NULL)
        return -1;
    if (old == 2)
        rc = PySet_Discard(self->twos, cell);
    else if (old > 2)
        rc = PySet_Discard(self->over, cell);
    if (rc >= 0) {
        if (a == 2)
            rc = PySet_Add(self->twos, cell);
        else if (a > 2)
            rc = PySet_Add(self->over, cell);
    }
    Py_DECREF(cell);
    return rc < 0 ? -1 : 0;
}

/* BalanceMatrices._update_row, verbatim semantics (integer arithmetic,
 * same set transitions, same IEEE factor division). */
static int
_update_row(RoundOpsObject *self, Py_ssize_t b)
{
    int64_t *xr = _xrow(self, b);
    int64_t *ar = _arow(self, b);
    PyObject *arow_list = PyList_GET_ITEM(self->alist, b);
    Py_ssize_t H = self->H;
    int64_t m, mx = 0, total = 0;
    Py_ssize_t h;

    if (!PyList_CheckExact(arow_list) || PyList_GET_SIZE(arow_list) != H) {
        PyErr_SetString(PyExc_ValueError, "alist row shape mismatch");
        return -1;
    }
    if (H == 2) {
        int64_t x0 = xr[0], x1 = xr[1];
        m = x0 <= x1 ? x0 : x1;
        mx = x0 <= x1 ? x1 : x0;
        total = x0 + x1;
    }
    else {
        /* paper median: rank-th smallest (rank is 1-indexed) */
        int64_t sorted_row[4096];
        for (h = 0; h < H; h++)
            sorted_row[h] = xr[h];
        /* insertion sort: H' is small (≤ a few dozen in practice) */
        for (h = 1; h < H; h++) {
            int64_t v = sorted_row[h];
            Py_ssize_t j = h;
            while (j > 0 && sorted_row[j - 1] > v) {
                sorted_row[j] = sorted_row[j - 1];
                j--;
            }
            sorted_row[j] = v;
        }
        m = sorted_row[self->rank - 1];
    }
    for (h = 0; h < H; h++) {
        int64_t x = xr[h];
        int64_t a = x > m ? x - m : 0;
        PyObject *old_obj = PyList_GET_ITEM(arow_list, h);
        long old = PyLong_AsLong(old_obj);
        if (old == -1 && PyErr_Occurred())
            return -1;
        if (old != (long)a) {
            PyObject *av = PyLong_FromLongLong(a);
            if (av == NULL)
                return -1;
            PyList_SetItem(arow_list, h, av);  /* steals av */
            ar[h] = a;
            if (_shift_cell(self, b, h, old, (long)a) < 0)
                return -1;
        }
        if (H != 2) {
            total += x;
            if (x > mx)
                mx = x;
        }
    }
    {
        /* mx / ceil(total / H'), 1.0 for an empty bucket — one IEEE
         * double division, exactly the Python expression's result. */
        double f = total
            ? (double)mx / (double)((total + H - 1) / H)
            : 1.0;
        PyObject *fo = PyFloat_FromDouble(f);
        if (fo == NULL)
            return -1;
        PyList_SetItem(self->factors, b, fo);  /* steals */
    }
    return 0;
}

static int
_bump(RoundOpsObject *self, Py_ssize_t b, Py_ssize_t h, int delta)
{
    PyObject *row_list, *iv;
    long cur;
    if (b < 0 || b >= self->S || h < 0 || h >= self->H) {
        PyErr_SetString(PyExc_IndexError, "bucket/channel out of range");
        return -1;
    }
    _xrow(self, b)[h] += delta;
    row_list = PyList_GET_ITEM(self->xrows, b);
    if (!PyList_CheckExact(row_list) || PyList_GET_SIZE(row_list) != self->H) {
        PyErr_SetString(PyExc_ValueError, "xrows row shape mismatch");
        return -1;
    }
    cur = PyLong_AsLong(PyList_GET_ITEM(row_list, h));
    if (cur == -1 && PyErr_Occurred())
        return -1;
    iv = PyLong_FromLong(cur + delta);
    if (iv == NULL)
        return -1;
    PyList_SetItem(row_list, h, iv);  /* steals */
    return _update_row(self, b);
}

static PyObject *
RoundOps_add_block(RoundOpsObject *self, PyObject *args)
{
    Py_ssize_t b, h;
    if (!PyArg_ParseTuple(args, "nn", &b, &h))
        return NULL;
    if (_bump(self, b, h, 1) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Returns False on histogram underflow (the caller raises
 * InvariantViolation with the pure path's message). */
static PyObject *
RoundOps_remove_block(RoundOpsObject *self, PyObject *args)
{
    Py_ssize_t b, h;
    if (!PyArg_ParseTuple(args, "nn", &b, &h))
        return NULL;
    if (b < 0 || b >= self->S || h < 0 || h >= self->H) {
        PyErr_SetString(PyExc_IndexError, "bucket/channel out of range");
        return NULL;
    }
    if (_xrow(self, b)[h] <= 0)
        Py_RETURN_FALSE;
    if (_bump(self, b, h, -1) < 0)
        return NULL;
    Py_RETURN_TRUE;
}

/* X still matches the _xrows mirror?  (refresh_aux's tamper check:
 * X.tolist() == _xrows, without materializing the list.) */
static PyObject *
RoundOps_synced(RoundOpsObject *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t b, h;
    for (b = 0; b < self->S; b++) {
        PyObject *row_list = PyList_GET_ITEM(self->xrows, b);
        int64_t *xr = _xrow(self, b);
        if (!PyList_CheckExact(row_list)
            || PyList_GET_SIZE(row_list) != self->H)
            Py_RETURN_FALSE;
        for (h = 0; h < self->H; h++) {
            long v = PyLong_AsLong(PyList_GET_ITEM(row_list, h));
            if (v == -1 && PyErr_Occurred()) {
                PyErr_Clear();
                Py_RETURN_FALSE;
            }
            if ((int64_t)v != xr[h])
                Py_RETURN_FALSE;
        }
    }
    Py_RETURN_TRUE;
}

/* sorted 2-cells' channels; None on a duplicate channel (caller raises). */
static PyObject *
RoundOps_channels_with_two(RoundOpsObject *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t n = PySet_GET_SIZE(self->twos);
    PyObject *cells, *cols;
    Py_ssize_t i, j;
    if (n == 0)
        return PyList_New(0);
    cells = PySequence_List(self->twos);
    if (cells == NULL)
        return NULL;
    if (PyList_Sort(cells) < 0) {
        Py_DECREF(cells);
        return NULL;
    }
    cols = PyList_New(n);
    if (cols == NULL) {
        Py_DECREF(cells);
        return NULL;
    }
    for (i = 0; i < n; i++) {
        PyObject *cell = PyList_GET_ITEM(cells, i);
        PyObject *h;
        if (!PyTuple_CheckExact(cell) || PyTuple_GET_SIZE(cell) != 2) {
            Py_DECREF(cells); Py_DECREF(cols);
            PyErr_SetString(PyExc_ValueError, "malformed 2-cell");
            return NULL;
        }
        h = PyTuple_GET_ITEM(cell, 1);
        Py_INCREF(h);
        PyList_SET_ITEM(cols, i, h);
    }
    Py_DECREF(cells);
    /* duplicate-channel check (n is tiny: ≤ H') */
    for (i = 0; i < n; i++)
        for (j = i + 1; j < n; j++) {
            int eq = PyObject_RichCompareBool(PyList_GET_ITEM(cols, i),
                                              PyList_GET_ITEM(cols, j), Py_EQ);
            if (eq < 0) {
                Py_DECREF(cols);
                return NULL;
            }
            if (eq) {
                Py_DECREF(cols);
                Py_RETURN_NONE;
            }
        }
    return cols;
}

static PyMethodDef RoundOps_methods[] = {
    {"add_block", (PyCFunction)RoundOps_add_block, METH_VARARGS, NULL},
    {"remove_block", (PyCFunction)RoundOps_remove_block, METH_VARARGS, NULL},
    {"synced", (PyCFunction)RoundOps_synced, METH_NOARGS, NULL},
    {"channels_with_two", (PyCFunction)RoundOps_channels_with_two,
     METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject RoundOpsType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._speedups.RoundOps",
    .tp_basicsize = sizeof(RoundOpsObject),
    .tp_dealloc = (destructor)RoundOps_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled incremental Balance-matrices bookkeeping",
    .tp_methods = RoundOps_methods,
    .tp_init = (initproc)RoundOps_init,
    .tp_new = PyType_GenericNew,
};

/* ====================================================================== */
/* group_indices                                                          */
/* ====================================================================== */

/* The feed small-track grouping: for an int64 1-D bucket-id array,
 * return either a single int (exactly one distinct bucket — the caller
 * uses the whole chunk as-is) or ``(order, [(bucket, start, end), ...])``
 * where ``order`` lists the record indices stably sorted by bucket
 * (arrival order within a bucket) and each span addresses one bucket's
 * run inside ``records[order]`` — the same chunks, in the same order,
 * as the pure path's insertion-ordered dict of index lists. */
static PyObject *
speedups_group_indices(PyObject *Py_UNUSED(mod), PyObject *arg)
{
    Py_buffer buf;
    const int64_t *ids;
    Py_ssize_t n, i, g, ngroups = 0, pos;
    int64_t keys[64];
    Py_ssize_t counts[64], members[64][64];
    PyObject *order, *spans, *out;

    if (PyObject_GetBuffer(arg, &buf, PyBUF_STRIDES | PyBUF_FORMAT) < 0)
        return NULL;
    if (buf.ndim != 1 || buf.itemsize != 8 || buf.strides[0] != 8
        || (buf.format != NULL && strcmp(buf.format, "l") != 0
            && strcmp(buf.format, "q") != 0)) {
        PyBuffer_Release(&buf);
        PyErr_SetString(PyExc_TypeError,
                        "group_indices needs a contiguous int64 array");
        return NULL;
    }
    n = buf.shape[0];
    if (n == 0 || n > 64) {
        PyBuffer_Release(&buf);
        PyErr_SetString(PyExc_ValueError, "group_indices: 1 <= n <= 64");
        return NULL;
    }
    ids = (const int64_t *)buf.buf;

    for (i = 0; i < n; i++) {
        int64_t b = ids[i];
        for (g = 0; g < ngroups; g++)
            if (keys[g] == b)
                break;
        if (g == ngroups) {
            keys[g] = b;
            counts[g] = 0;
            ngroups++;
        }
        members[g][counts[g]++] = i;
    }
    PyBuffer_Release(&buf);

    if (ngroups == 1)
        return PyLong_FromLongLong(keys[0]);

    /* sort groups by bucket id (insertion sort, ngroups ≤ 64) */
    for (g = 1; g < ngroups; g++) {
        int64_t k = keys[g];
        Py_ssize_t c = counts[g], j = g;
        Py_ssize_t tmp[64];
        memcpy(tmp, members[g], c * sizeof(Py_ssize_t));
        while (j > 0 && keys[j - 1] > k) {
            keys[j] = keys[j - 1];
            counts[j] = counts[j - 1];
            memcpy(members[j], members[j - 1], counts[j] * sizeof(Py_ssize_t));
            j--;
        }
        keys[j] = k;
        counts[j] = c;
        memcpy(members[j], tmp, c * sizeof(Py_ssize_t));
    }

    order = PyList_New(n);
    spans = PyList_New(ngroups);
    if (order == NULL || spans == NULL) {
        Py_XDECREF(order);
        Py_XDECREF(spans);
        return NULL;
    }
    pos = 0;
    for (g = 0; g < ngroups; g++) {
        Py_ssize_t start = pos;
        PyObject *span;
        for (i = 0; i < counts[g]; i++) {
            PyObject *idx = PyLong_FromSsize_t(members[g][i]);
            if (idx == NULL)
                goto fail;
            PyList_SET_ITEM(order, pos, idx);
            pos++;
        }
        span = Py_BuildValue("(Lnn)", (long long)keys[g], start, pos);
        if (span == NULL)
            goto fail;
        PyList_SET_ITEM(spans, g, span);
    }
    out = PyTuple_Pack(2, order, spans);
    Py_DECREF(order);
    Py_DECREF(spans);
    return out;

fail:
    Py_DECREF(order);
    Py_DECREF(spans);
    return NULL;
}

/* ====================================================================== */
/* dumps — canonical compact JSON for plain scalar trees                  */
/* ====================================================================== */

typedef struct {
    char *buf;
    Py_ssize_t len;
    Py_ssize_t cap;
} Writer;

static int
w_reserve(Writer *w, Py_ssize_t extra)
{
    if (w->len + extra <= w->cap)
        return 0;
    {
        Py_ssize_t ncap = w->cap * 2;
        char *nb;
        if (ncap < w->len + extra)
            ncap = w->len + extra + 256;
        nb = PyMem_Realloc(w->buf, ncap);
        if (nb == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        w->buf = nb;
        w->cap = ncap;
    }
    return 0;
}

static inline int
w_char(Writer *w, char c)
{
    if (w->len + 1 > w->cap && w_reserve(w, 1) < 0)
        return -1;
    w->buf[w->len++] = c;
    return 0;
}

static int
w_bytes(Writer *w, const char *s, Py_ssize_t n)
{
    if (w_reserve(w, n) < 0)
        return -1;
    memcpy(w->buf + w->len, s, n);
    w->len += n;
    return 0;
}

static const char HEX[] = "0123456789abcdef";

/* json.dumps string escaping with ensure_ascii: ASCII 0x20..0x7e pass
 * through (except " and \), control chars use the two-char shortcuts
 * where they exist, everything else becomes \uXXXX (surrogate pairs for
 * astral codepoints) — matching CPython's c_encode_basestring_ascii. */
static int
w_string(Writer *w, PyObject *s)
{
    Py_ssize_t n = PyUnicode_GET_LENGTH(s);
    int kind = PyUnicode_KIND(s);
    const void *data = PyUnicode_DATA(s);
    Py_ssize_t i;
    if (w_char(w, '"') < 0)
        return -1;
    for (i = 0; i < n; i++) {
        Py_UCS4 c = PyUnicode_READ(kind, data, i);
        if (c >= 0x20 && c <= 0x7e && c != '"' && c != '\\') {
            if (w_char(w, (char)c) < 0)
                return -1;
            continue;
        }
        switch (c) {
        case '"':  if (w_bytes(w, "\\\"", 2) < 0) return -1; break;
        case '\\': if (w_bytes(w, "\\\\", 2) < 0) return -1; break;
        case '\b': if (w_bytes(w, "\\b", 2) < 0) return -1; break;
        case '\f': if (w_bytes(w, "\\f", 2) < 0) return -1; break;
        case '\n': if (w_bytes(w, "\\n", 2) < 0) return -1; break;
        case '\r': if (w_bytes(w, "\\r", 2) < 0) return -1; break;
        case '\t': if (w_bytes(w, "\\t", 2) < 0) return -1; break;
        default:
            if (c >= 0x10000) {
                Py_UCS4 v = c - 0x10000;
                unsigned int hi = 0xd800 + (v >> 10);
                unsigned int lo = 0xdc00 + (v & 0x3ff);
                char esc[12] = {
                    '\\', 'u', HEX[(hi >> 12) & 15], HEX[(hi >> 8) & 15],
                    HEX[(hi >> 4) & 15], HEX[hi & 15],
                    '\\', 'u', HEX[(lo >> 12) & 15], HEX[(lo >> 8) & 15],
                    HEX[(lo >> 4) & 15], HEX[lo & 15],
                };
                if (w_bytes(w, esc, 12) < 0)
                    return -1;
            }
            else {
                char esc[6] = {
                    '\\', 'u', HEX[(c >> 12) & 15], HEX[(c >> 8) & 15],
                    HEX[(c >> 4) & 15], HEX[c & 15],
                };
                if (w_bytes(w, esc, 6) < 0)
                    return -1;
            }
        }
    }
    return w_char(w, '"');
}

static int w_value(Writer *w, PyObject *obj, int sort_keys);

static int
w_float(Writer *w, PyObject *obj)
{
    double v = PyFloat_AS_DOUBLE(obj);
    if (Py_IS_NAN(v))
        return w_bytes(w, "NaN", 3);
    if (Py_IS_INFINITY(v))
        return w_bytes(w, v > 0 ? "Infinity" : "-Infinity", v > 0 ? 8 : 9);
    {
        /* float.__repr__'s algorithm — what json.dumps emits */
        char *s = PyOS_double_to_string(v, 'r', 0, Py_DTSF_ADD_DOT_0, NULL);
        int rc;
        if (s == NULL)
            return -1;
        rc = w_bytes(w, s, (Py_ssize_t)strlen(s));
        PyMem_Free(s);
        return rc;
    }
}

static int
w_int(Writer *w, PyObject *obj)
{
    /* Fast path for machine-word ints; repr() for arbitrary precision. */
    int overflow = 0;
    long long v = PyLong_AsLongLongAndOverflow(obj, &overflow);
    if (!overflow && !(v == -1 && PyErr_Occurred())) {
        char tmp[24];
        int n = snprintf(tmp, sizeof tmp, "%lld", v);
        return w_bytes(w, tmp, n);
    }
    PyErr_Clear();
    {
        PyObject *r = PyObject_Repr(obj);
        Py_ssize_t n;
        const char *s;
        int rc;
        if (r == NULL)
            return -1;
        s = PyUnicode_AsUTF8AndSize(r, &n);
        if (s == NULL) {
            Py_DECREF(r);
            return -1;
        }
        rc = w_bytes(w, s, n);
        Py_DECREF(r);
        return rc;
    }
}

static int
w_dict(Writer *w, PyObject *obj, int sort_keys)
{
    PyObject *keys = NULL;
    Py_ssize_t i, n;
    int first = 1;
    if (w_char(w, '{') < 0)
        return -1;
    if (sort_keys) {
        keys = PyDict_Keys(obj);
        if (keys == NULL)
            return -1;
        n = PyList_GET_SIZE(keys);
        for (i = 0; i < n; i++)
            if (!PyUnicode_CheckExact(PyList_GET_ITEM(keys, i))) {
                Py_DECREF(keys);
                PyErr_SetString(PyExc_TypeError, "non-str dict key");
                return -1;
            }
        if (PyList_Sort(keys) < 0) {
            Py_DECREF(keys);
            return -1;
        }
        for (i = 0; i < n; i++) {
            PyObject *k = PyList_GET_ITEM(keys, i);
            PyObject *v = PyDict_GetItemWithError(obj, k);
            if (v == NULL) {
                Py_DECREF(keys);
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_RuntimeError, "dict changed");
                return -1;
            }
            if (!first && w_char(w, ',') < 0)
                goto dfail;
            first = 0;
            if (w_string(w, k) < 0 || w_char(w, ':') < 0
                || w_value(w, v, sort_keys) < 0)
                goto dfail;
        }
        Py_DECREF(keys);
    }
    else {
        PyObject *k, *v;
        Py_ssize_t pos = 0;
        while (PyDict_Next(obj, &pos, &k, &v)) {
            if (!PyUnicode_CheckExact(k)) {
                PyErr_SetString(PyExc_TypeError, "non-str dict key");
                return -1;
            }
            if (!first && w_char(w, ',') < 0)
                return -1;
            first = 0;
            if (w_string(w, k) < 0 || w_char(w, ':') < 0
                || w_value(w, v, sort_keys) < 0)
                return -1;
        }
    }
    return w_char(w, '}');
dfail:
    Py_DECREF(keys);
    return -1;
}

static int
w_value(Writer *w, PyObject *obj, int sort_keys)
{
    int rc;
    if (obj == Py_None)
        return w_bytes(w, "null", 4);
    if (obj == Py_True)
        return w_bytes(w, "true", 4);
    if (obj == Py_False)
        return w_bytes(w, "false", 5);
    if (PyUnicode_CheckExact(obj))
        return w_string(w, obj);
    if (PyLong_CheckExact(obj))
        return w_int(w, obj);
    if (PyFloat_CheckExact(obj))
        return w_float(w, obj);
    if (PyList_CheckExact(obj) || PyTuple_CheckExact(obj)) {
        Py_ssize_t i, n = PySequence_Fast_GET_SIZE(obj);
        PyObject **items = PySequence_Fast_ITEMS(obj);
        if (Py_EnterRecursiveCall(" while encoding JSON"))
            return -1;
        rc = w_char(w, '[');
        for (i = 0; rc == 0 && i < n; i++) {
            if (i && (rc = w_char(w, ',')) < 0)
                break;
            rc = w_value(w, items[i], sort_keys);
        }
        if (rc == 0)
            rc = w_char(w, ']');
        Py_LeaveRecursiveCall();
        return rc;
    }
    if (PyDict_CheckExact(obj)) {
        if (Py_EnterRecursiveCall(" while encoding JSON"))
            return -1;
        rc = w_dict(w, obj, sort_keys);
        Py_LeaveRecursiveCall();
        return rc;
    }
    PyErr_Format(PyExc_TypeError,
                 "dumps: unsupported type %.80s", Py_TYPE(obj)->tp_name);
    return -1;
}

static PyObject *
speedups_dumps(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *obj;
    int sort_keys = 0;
    Writer w;
    PyObject *out;
    if (!PyArg_ParseTuple(args, "O|p", &obj, &sort_keys))
        return NULL;
    w.cap = 1024;
    w.len = 0;
    w.buf = PyMem_Malloc(w.cap);
    if (w.buf == NULL)
        return PyErr_NoMemory();
    if (w_value(&w, obj, sort_keys) < 0) {
        PyMem_Free(w.buf);
        return NULL;
    }
    out = PyUnicode_DecodeASCII(w.buf, w.len, NULL);
    PyMem_Free(w.buf);
    return out;
}

/* ====================================================================== */

static PyMethodDef speedups_methods[] = {
    {"group_indices", (PyCFunction)speedups_group_indices, METH_O,
     "Group a small int64 bucket-id array into (bucket, [indices]) pairs."},
    {"dumps", (PyCFunction)speedups_dumps, METH_VARARGS,
     "dumps(obj, sort_keys=False): canonical compact JSON for scalar trees."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef speedups_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._speedups",
    .m_doc = "C hot-path kernels for the compiled backend.",
    .m_size = -1,
    .m_methods = speedups_methods,
};

PyMODINIT_FUNC
PyInit__speedups(void)
{
    PyObject *m;
    if (PyType_Ready(&RoundOpsType) < 0)
        return NULL;
    m = PyModule_Create(&speedups_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&RoundOpsType);
    if (PyModule_AddObject(m, "RoundOps", (PyObject *)&RoundOpsType) < 0) {
        Py_DECREF(&RoundOpsType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
