"""The sweep journal: checkpoint completed cells so ``--resume`` is cheap.

A journal directory holds two things:

* ``journal.jsonl`` — an append-only log (schema ``repro.journal/1``):
  one ``start`` record per sweep session (task, cell count, and a grid
  fingerprint over the sorted cell keys) and one ``cell`` record per
  completed cell (``done`` or ``failed``).  Every line is flushed and
  fsynced, so a SIGKILL mid-sweep loses at most the cell in flight.
* ``cells/`` — a :class:`~repro.exec.ResultCache` directory the sweep
  uses as its payload store when no ``--cache-dir`` was given.  Payload
  writes are atomic per cell, so a killed sweep leaves only whole,
  integrity-checked entries behind.

``repro sweep --journal DIR --resume`` then re-runs the same grid:
completed cells are served from the checkpoint byte-identically (payloads
are pure functions of their specs) and only the missing ones execute.
The grid fingerprint guards against resuming a *different* grid into an
old journal.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, Sequence

__all__ = ["SweepJournal", "JOURNAL_SCHEMA", "grid_fingerprint"]

JOURNAL_SCHEMA = "repro.journal/1"


def grid_fingerprint(keys: Iterable[str]) -> str:
    """A short digest identifying a sweep grid (order-independent)."""
    joined = "\n".join(sorted(keys))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


class SweepJournal:
    """Append-only completion log + payload checkpoint for one sweep grid."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, "journal.jsonl")
        self.cells_dir = os.path.join(directory, "cells")
        #: Cells recorded done / failed *by this session*.
        self.recorded_done = 0
        self.recorded_failed = 0
        #: Cells this session served from the checkpoint (set by the sweep).
        self.resumed = 0

    # ------------------------------------------------------------- writing

    def _append(self, record: dict) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())

    def begin(self, task: str, keys: Sequence[str]) -> None:
        """Append a session-start record (task, cell count, grid digest)."""
        self._append({
            "ev": "start",
            "schema": JOURNAL_SCHEMA,
            "task": task,
            "cells": len(keys),
            "grid": grid_fingerprint(keys),
        })

    def record(self, key: str, status: str) -> None:
        """Checkpoint one completed cell (``status`` ∈ done | failed)."""
        self._append({"ev": "cell", "key": key, "status": status})
        if status == "done":
            self.recorded_done += 1
        else:
            self.recorded_failed += 1

    # ------------------------------------------------------------- reading

    def read(self) -> list[dict]:
        """All journal records; a torn final line (SIGKILL) is forgiven."""
        if not os.path.exists(self.path):
            return []
        with open(self.path) as fh:
            lines = fh.readlines()
        records = []
        for i, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines):
                    break  # torn tail of a killed sweep
                raise ValueError(f"bad journal line {i} in {self.path}") from None
        return records

    def completed(self) -> dict[str, str]:
        """``key -> status`` over all sessions (the last record wins)."""
        out: dict[str, str] = {}
        for record in self.read():
            if record.get("ev") == "cell":
                out[record["key"]] = record.get("status", "done")
        return out

    def last_start(self) -> dict | None:
        """The most recent session-start record, if any."""
        start = None
        for record in self.read():
            if record.get("ev") == "start":
                start = record
        return start

    # --------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Session counters plus the all-sessions completion tally."""
        completed = self.completed()
        return {
            "directory": self.directory,
            "recorded_done": self.recorded_done,
            "recorded_failed": self.recorded_failed,
            "resumed": self.resumed,
            "total_done": sum(1 for s in completed.values() if s == "done"),
            "total_failed": sum(1 for s in completed.values() if s == "failed"),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepJournal({self.directory!r})"
