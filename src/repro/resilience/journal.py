"""The sweep journal: checkpoint completed cells so ``--resume`` is cheap.

A journal directory holds two things:

* ``journal.jsonl`` — an append-only log (schema ``repro.journal/1``):
  one ``start`` record per sweep session (task, cell count, and a grid
  fingerprint over the sorted cell keys) and one ``cell`` record per
  completed cell (``done`` or ``failed``).  Every line is flushed and
  fsynced, so a SIGKILL mid-sweep loses at most the cell in flight.
* ``cells/`` — a :class:`~repro.exec.ResultCache` directory the sweep
  uses as its payload store when no ``--cache-dir`` was given.  Payload
  writes are atomic per cell, so a killed sweep leaves only whole,
  integrity-checked entries behind.

``repro sweep --journal DIR --resume`` then re-runs the same grid:
completed cells are served from the checkpoint byte-identically (payloads
are pure functions of their specs) and only the missing ones execute.
The grid fingerprint guards against resuming a *different* grid into an
old journal.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, Sequence

__all__ = ["SweepJournal", "JOURNAL_SCHEMA", "grid_fingerprint"]

JOURNAL_SCHEMA = "repro.journal/1"


def grid_fingerprint(keys: Iterable[str]) -> str:
    """A short digest identifying a sweep grid (order-independent)."""
    joined = "\n".join(sorted(keys))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


class SweepJournal:
    """Append-only completion log + payload checkpoint for one sweep grid."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, "journal.jsonl")
        self.cells_dir = os.path.join(directory, "cells")
        #: Cells recorded done / failed *by this session*.
        self.recorded_done = 0
        self.recorded_failed = 0
        #: Cells this session served from the checkpoint (set by the sweep).
        self.resumed = 0

    # ------------------------------------------------------------- writing

    def _append(self, record: dict) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())

    def begin(self, task: str, keys: Sequence[str]) -> None:
        """Append a session-start record (task, cell count, grid digest)."""
        self._append({
            "ev": "start",
            "schema": JOURNAL_SCHEMA,
            "task": task,
            "cells": len(keys),
            "grid": grid_fingerprint(keys),
        })

    def record(self, key: str, status: str) -> None:
        """Checkpoint one completed cell (``status`` ∈ done | failed)."""
        self._append({"ev": "cell", "key": key, "status": status})
        if status == "done":
            self.recorded_done += 1
        else:
            self.recorded_failed += 1

    def job(
        self,
        key: str,
        status: str,
        task: str | None = None,
        params: dict | None = None,
        meta: dict | None = None,
    ) -> None:
        """Checkpoint one service job transition (job-granular records).

        ``status`` ∈ ``admitted | done | failed | cancelled``.  The
        ``admitted`` record carries the spec (task + params) so a
        restarted service can resubmit every job that never reached a
        terminal state — the payload of a ``done`` job lives in the
        ``cells/`` store, so resumed completions are byte-identical.
        """
        record: dict = {"ev": "job", "key": key, "status": status}
        if task is not None:
            record["task"] = task
        if params is not None:
            record["params"] = params
        if meta:
            record["meta"] = meta
        self._append(record)

    # ------------------------------------------------------------- reading

    def read(self) -> list[dict]:
        """All journal records; a torn final line (SIGKILL) is forgiven."""
        if not os.path.exists(self.path):
            return []
        with open(self.path) as fh:
            lines = fh.readlines()
        records = []
        for i, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines):
                    break  # torn tail of a killed sweep
                raise ValueError(f"bad journal line {i} in {self.path}") from None
        return records

    def completed(self) -> dict[str, str]:
        """``key -> status`` over all sessions (the last record wins)."""
        out: dict[str, str] = {}
        for record in self.read():
            if record.get("ev") == "cell":
                out[record["key"]] = record.get("status", "done")
        return out

    def last_start(self) -> dict | None:
        """The most recent session-start record, if any."""
        start = None
        for record in self.read():
            if record.get("ev") == "start":
                start = record
        return start

    def verify_grid(self, keys: Sequence[str]) -> tuple[str | None, str]:
        """``(recorded_fingerprint, requested_fingerprint)`` for ``keys``.

        ``recorded_fingerprint`` is None for a fresh journal.  Callers
        must refuse to attach when both exist and differ — appending a
        new grid to an old journal orphans the original checkpoints and
        poisons later resumes (the ``--resume`` mismatch diagnostic
        names both fingerprints).
        """
        start = self.last_start()
        recorded = start.get("grid") if start is not None else None
        return recorded, grid_fingerprint(keys)

    def pending_jobs(self) -> list[dict]:
        """Admitted-but-not-terminal job records, in admission order.

        The last status per key wins, so a job admitted, completed, and
        re-admitted later (say, after its cache entry was evicted) is
        pending again.  This is what a restarted service resubmits.
        """
        jobs: dict[str, dict] = {}
        order: list[str] = []
        for record in self.read():
            if record.get("ev") != "job":
                continue
            key = record.get("key")
            if not key:
                continue
            if record.get("status") == "admitted":
                if key not in jobs:
                    order.append(key)
                merged = dict(jobs.get(key) or {})
                merged.update(record)
                jobs[key] = merged
            elif key in jobs:
                jobs[key]["status"] = record.get("status", "done")
        return [jobs[k] for k in order if jobs[k].get("status") == "admitted"]

    # --------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Session counters plus the all-sessions completion tally."""
        completed = self.completed()
        job_status: dict[str, str] = {}
        for record in self.read():
            if record.get("ev") == "job" and record.get("key"):
                job_status[record["key"]] = record.get("status", "admitted")
        return {
            "directory": self.directory,
            "recorded_done": self.recorded_done,
            "recorded_failed": self.recorded_failed,
            "resumed": self.resumed,
            "total_done": sum(1 for s in completed.values() if s == "done"),
            "total_failed": sum(1 for s in completed.values() if s == "failed"),
            "jobs_seen": len(job_status),
            "jobs_pending": sum(
                1 for s in job_status.values() if s == "admitted"
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepJournal({self.directory!r})"
