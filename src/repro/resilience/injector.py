"""Fault injection: turn a :class:`~repro.resilience.FaultPlan` into fire.

One :class:`FaultInjector` is scoped to **one attempt of one cell** —
that scoping is the whole trick.  Opportunity counters live on the
injector, the decision function hashes ``(plan seed, rule seed, site,
cell, attempt, index)``, and every attempt rebuilds its simulation from
scratch, so a cell's fault schedule is a pure function of the plan and
the cell — independent of worker scheduling, pool rebuilds, or whether
the sweep runs serially.

Injection surfaces:

* **PDM store layer** — :class:`~repro.pdm.machine.ParallelDiskMachine`
  consults :func:`active_fault_injector` at construction and calls
  :meth:`FaultInjector.on_read` / :meth:`~FaultInjector.on_write` /
  :meth:`~FaultInjector.on_free` per parallel I/O (one ``is not None``
  check when no plan is active — the machinery is fully inert);
* **exec worker tasks** — the runner's worker entry point calls
  :meth:`FaultInjector.exec_gate` before running the task (raise / crash
  / hang) and poisons the payload afterwards for ``corrupt`` rules;
* **cache entries on disk** — :func:`inject_cache_faults` deterministically
  damages or deletes ``ResultCache`` entries (caught by the cache's
  sha256 integrity check, which quarantines and re-executes).

When an observation is attached, every fire emits a ``fault.injected``
trace event and increments counters under the ``resilience`` metrics
scope.  Inside sweep workers the injector runs **without** an
observation on purpose: task payloads must stay pure functions of
``(task, params)``, so chaos instrumentation never leaks into them.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from ..exceptions import InjectedIOError, InjectedWorkerCrash
from .plan import FaultPlan, FaultRule, corruption_seed, decision_unit

__all__ = [
    "FaultInjector",
    "activate",
    "active_fault_injector",
    "exec_decision",
    "inject_cache_faults",
]

#: The ambient injector for the currently executing attempt (or None).
_ACTIVE: "FaultInjector | None" = None


def active_fault_injector() -> "FaultInjector | None":
    """The injector installed by :func:`activate` for this attempt, if any.

    :class:`~repro.pdm.machine.ParallelDiskMachine` consults this at
    construction; with no plan active it returns ``None`` and the I/O hot
    path stays untouched.
    """
    return _ACTIVE


@contextmanager
def activate(injector: "FaultInjector | None"):
    """Install ``injector`` as the ambient injector for the enclosed block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


class FaultInjector:
    """Deterministic per-(cell, attempt) fault firing for one plan."""

    def __init__(self, plan: FaultPlan, cell: str = "", attempt: int = 0, obs=None):
        self.plan = plan
        self.cell = str(cell)
        self.attempt = int(attempt)
        self._counts: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._by_site: dict[str, tuple[tuple[int, FaultRule], ...]] = {
            site: plan.rules_for(site)
            for site in {r.site for r in plan.rules}
        }
        self.fired_total = 0
        self._obs = obs
        self._scope = obs.scope("resilience") if obs is not None else None

    # ------------------------------------------------------------ plumbing

    @property
    def watches_store(self) -> bool:
        """True when the plan attaches any rule to a ``store.*`` site."""
        return self.plan.watches_store

    @property
    def wants_store_checksums(self) -> bool:
        """True when the plan corrupts stored blocks (checksums required)."""
        return self.plan.wants_store_checksums

    def decide(self, site: str) -> tuple[FaultRule, int] | None:
        """Consume one opportunity at ``site``; the firing rule (or None).

        Returns ``(rule, opportunity_index)`` when a rule fires.  The
        opportunity index advances only for sites the plan watches, so
        attaching a plan with no ``store.*`` rules leaves store behaviour
        untouched down to the decision stream.
        """
        rules = self._by_site.get(site)
        if not rules:
            return None
        index = self._counts.get(site, 0)
        self._counts[site] = index + 1
        for ri, rule in rules:
            if rule.mode != "permanent" and self.attempt >= rule.attempts:
                continue
            if rule.budget is not None and self._fired.get(ri, 0) >= rule.budget:
                continue
            if index in rule.at:
                pass  # site-addressed: fire unconditionally at this index
            elif rule.rate > 0.0:
                unit = decision_unit(
                    self.plan.seed, rule.seed, site, self.cell, self.attempt, index
                )
                if unit >= rule.rate:
                    continue
            else:
                continue
            self._fired[ri] = self._fired.get(ri, 0) + 1
            self.fired_total += 1
            self._record(site, rule, index)
            return rule, index
        return None

    def _record(self, site: str, rule: FaultRule, index: int) -> None:
        if self._obs is not None:
            self._obs.event(
                "fault.injected", site=site, mode=rule.mode, effect=rule.effect,
                index=index, attempt=self.attempt, cell=self.cell[:16],
            )
        if self._scope is not None:
            self._scope.counter("fault.injected").inc()
            self._scope.counter(f"fault.{site}").inc()

    def _corruption_seed(self, site: str, index: int, rule: FaultRule) -> int:
        return corruption_seed(
            self.plan.seed, rule.seed, site, self.cell, self.attempt, index
        )

    # --------------------------------------------------------- store hooks

    def on_read(self) -> None:
        """One read-I/O opportunity; raises :class:`InjectedIOError` on fire."""
        hit = self.decide("store.read")
        if hit is not None:
            rule, index = hit
            raise InjectedIOError(
                f"injected {rule.mode} read fault (op {index}, attempt {self.attempt})"
            )

    def on_free(self) -> None:
        """One free opportunity; raises :class:`InjectedIOError` on fire."""
        hit = self.decide("store.free")
        if hit is not None:
            rule, index = hit
            raise InjectedIOError(
                f"injected {rule.mode} free fault (op {index}, attempt {self.attempt})"
            )

    def on_write(self, width: int) -> tuple[int, int] | None:
        """One write-I/O opportunity over ``width`` blocks.

        Raise-class rules raise :class:`InjectedIOError` *before* the
        write happens (no partial effects).  ``corrupt`` rules return a
        ``(row_index, bit_seed)`` pair — the machine performs the write,
        then flips one bit of the stored row via
        ``store.corrupt_block`` so a later checksum-verified read raises
        :class:`~repro.exceptions.BlockCorruptionError`.
        """
        hit = self.decide("store.write")
        if hit is None:
            return None
        rule, index = hit
        if rule.mode == "corrupt":
            seed = self._corruption_seed("store.write", index, rule)
            return seed % max(width, 1), seed // max(width, 1)
        raise InjectedIOError(
            f"injected {rule.mode} write fault (op {index}, attempt {self.attempt})"
        )

    # ----------------------------------------------------------- exec hook

    def exec_gate(self, in_worker: bool = False) -> str | None:
        """The single per-attempt task gate; called before the task runs.

        Returns ``"poison"`` for corrupt-mode rules (the caller garbles
        the payload after execution), otherwise fires the rule's effect:
        ``raise`` raises :class:`InjectedIOError`, ``hang`` sleeps
        ``rule.duration`` then raises, ``crash`` kills the worker process
        outright in pool mode (``os._exit``) or raises
        :class:`InjectedWorkerCrash` in serial mode.
        """
        hit = self.decide("exec.task")
        if hit is None:
            return None
        rule, index = hit
        if rule.mode == "corrupt":
            return "poison"
        if rule.effect == "crash":
            if in_worker:  # pragma: no cover - kills the test process
                os._exit(13)
            raise InjectedWorkerCrash(
                f"injected {rule.mode} worker crash (attempt {self.attempt})"
            )
        if rule.effect == "hang":
            time.sleep(rule.duration)
            raise InjectedIOError(
                f"injected {rule.mode} hang released after {rule.duration}s "
                f"(attempt {self.attempt})"
            )
        raise InjectedIOError(
            f"injected {rule.mode} task fault (attempt {self.attempt})"
        )


def exec_decision(plan: FaultPlan, cell: str, attempt: int) -> FaultRule | None:
    """The rule (if any) that a fresh attempt's exec gate would fire.

    A pure function of ``(plan, cell, attempt)`` — the parent process uses
    it to attribute a ``BrokenProcessPool`` to the cell whose plan said
    "crash", so innocent cells resubmit without being charged a retry.
    """
    hit = FaultInjector(plan, cell=cell, attempt=attempt).decide("exec.task")
    return hit[0] if hit is not None else None


def inject_cache_faults(directory: str, plan: FaultPlan, obs=None) -> int:
    """Deterministically damage on-disk cache entries per ``cache.entry`` rules.

    Entries are visited in sorted filename order (one opportunity each):
    ``corrupt`` rules flip one byte of the entry file (caught by the
    cache's sha256 integrity check → quarantined and re-executed);
    ``transient`` / ``permanent`` rules delete the entry (a plain miss).
    Returns the number of entries damaged.
    """
    if not plan.rules_for("cache.entry") or not os.path.isdir(directory):
        return 0
    injector = FaultInjector(plan, cell="cache", obs=obs)
    damaged = 0
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        hit = injector.decide("cache.entry")
        if hit is None:
            continue
        rule, index = hit
        path = os.path.join(directory, name)
        if rule.mode == "corrupt":
            with open(path, "r+b") as fh:
                data = fh.read()
                if not data:
                    continue
                pos = injector._corruption_seed("cache.entry", index, rule) % len(data)
                fh.seek(pos)
                fh.write(bytes([data[pos] ^ 0xFF]))
        else:
            os.unlink(path)
        damaged += 1
    return damaged
