"""The seeded, deterministic fault-plan DSL.

A :class:`FaultPlan` describes *which* faults fire *where*, as a pure
function of the plan's seed — never of wall-clock, scheduling, or worker
identity.  That purity is what makes chaos testing a **determinism gate**
rather than a flake generator: under any transient plan with retries
enabled, a sweep's payloads must be bit-identical to the fault-free run
(see ``docs/resilience.md``).

Sites — where a rule can attach::

    store.read    one parallel read I/O on a ParallelDiskMachine
    store.write   one parallel write I/O (corrupt mode flips a stored bit)
    store.free    one batched free
    exec.task     one task attempt in the ParallelRunner (gate before run)
    cache.entry   one on-disk ResultCache entry (inject_cache_faults)

Modes — what kind of fault::

    transient     fires only while ``attempt < rule.attempts`` (default 1),
                  so a retried attempt runs clean — survivable by design
    permanent     fires on every attempt — exhausts retries, the cell
                  becomes a structured ``repro.failures/1`` record
    corrupt       data-at-rest damage instead of an exception: a stored
                  block gets one bit flipped (caught by the store
                  checksums), a cache entry gets one byte flipped (caught
                  by the cache's sha256 integrity field), a task payload
                  gets poisoned (caught by the runner's schema check)

Addressing — when a rule fires, per ``(cell, attempt, site)`` stream::

    rate=p        each opportunity fires independently with probability
                  ``p``, decided by a SHA-256 hash of
                  ``(plan.seed, rule.seed, site, cell, attempt, index)``
    at=(i, ...)   site-addressed: fire exactly at opportunity indices i
    budget=k      at most ``k`` fires per rule per (cell, attempt)

Opportunity indices count per site *within one attempt of one cell*, so a
cell's fault schedule is identical whether it runs serially, on a pool,
or after a pool rebuild — the decision never observes global state.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field

from ..exceptions import ParameterError

__all__ = ["FaultPlan", "FaultRule", "SITES", "MODES", "EFFECTS", "decision_unit"]

#: Valid injection sites.
SITES = ("store.read", "store.write", "store.free", "exec.task", "cache.entry")

#: Valid fault modes.
MODES = ("transient", "permanent", "corrupt")

#: Valid effects for ``exec.task`` raise-class faults.
EFFECTS = ("raise", "crash", "hang")

#: Sites on which ``corrupt`` mode is meaningful (data at rest / payload).
_CORRUPT_SITES = ("store.write", "cache.entry", "exec.task")


def decision_unit(
    plan_seed: int, rule_seed: int, site: str, cell: str, attempt: int, index: int
) -> float:
    """A uniform deterministic value in ``[0, 1)`` for one opportunity.

    SHA-256 over the full decision coordinates; the same coordinates
    always produce the same value, on any host, in any process.
    """
    text = f"{plan_seed}|{rule_seed}|{site}|{cell}|{attempt}|{index}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def corruption_seed(
    plan_seed: int, rule_seed: int, site: str, cell: str, attempt: int, index: int
) -> int:
    """A deterministic integer seeding *what* to corrupt (row / bit / byte)."""
    text = f"corrupt|{plan_seed}|{rule_seed}|{site}|{cell}|{attempt}|{index}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[8:16], "big")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a site, a mode, and an addressing scheme.

    ``attempts`` gates non-permanent rules: they fire only while the
    cell's attempt number is below it (default 1 → first attempt only),
    which is what guarantees a bounded retry budget always reaches a
    clean attempt.  ``effect`` selects the failure mechanism for
    ``exec.task`` rules (``raise`` | ``crash`` | ``hang``); ``duration``
    is the hang's sleep in seconds.
    """

    site: str
    mode: str = "transient"
    rate: float = 0.0
    at: tuple[int, ...] = ()
    budget: int | None = None
    attempts: int = 1
    effect: str = "raise"
    duration: float = 0.05
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "at", tuple(int(i) for i in self.at))

    def validate(self) -> None:
        """Raise :class:`~repro.exceptions.ParameterError` on a bad rule."""
        if self.site not in SITES:
            raise ParameterError(
                f"unknown fault site {self.site!r} (expected one of {SITES})"
            )
        if self.mode not in MODES:
            raise ParameterError(
                f"unknown fault mode {self.mode!r} (expected one of {MODES})"
            )
        if self.mode == "corrupt" and self.site not in _CORRUPT_SITES:
            raise ParameterError(
                f"corrupt mode applies to data at rest — site {self.site!r} "
                f"is not one of {_CORRUPT_SITES}"
            )
        if self.effect not in EFFECTS:
            raise ParameterError(
                f"unknown fault effect {self.effect!r} (expected one of {EFFECTS})"
            )
        if self.effect != "raise" and self.site != "exec.task":
            raise ParameterError(
                f"effect {self.effect!r} only applies to exec.task rules"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ParameterError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.rate == 0.0 and not self.at:
            raise ParameterError(
                f"rule on {self.site!r} can never fire: give it a rate or at=(...)"
            )
        if self.budget is not None and self.budget < 1:
            raise ParameterError(f"fault budget must be >= 1, got {self.budget}")
        if self.attempts < 1:
            raise ParameterError(f"fault attempts must be >= 1, got {self.attempts}")
        if self.duration < 0:
            raise ParameterError(f"hang duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of :class:`FaultRule` injections.

    Plans are frozen (hence picklable across the process pool) and
    JSON-round-trippable: ``FaultPlan.load`` accepts a file path or an
    inline JSON object, which is what ``repro sweep --fault-plan`` takes.
    The plan itself never enters the cache fingerprint — payloads are pure
    functions of ``(task, params)`` whether or not faults were injected,
    which is the chaos-determinism guarantee.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def validate(self) -> "FaultPlan":
        """Validate every rule; returns self for chaining."""
        for rule in self.rules:
            rule.validate()
        return self

    # ------------------------------------------------------------- queries

    def rules_for(self, site: str) -> tuple[tuple[int, FaultRule], ...]:
        """``(rule_index, rule)`` pairs attached to ``site``, in plan order."""
        return tuple((i, r) for i, r in enumerate(self.rules) if r.site == site)

    @property
    def watches_store(self) -> bool:
        """True when any rule attaches to a ``store.*`` site."""
        return any(r.site.startswith("store.") for r in self.rules)

    @property
    def wants_store_checksums(self) -> bool:
        """True when a ``store.write``/``corrupt`` rule needs checksums on."""
        return any(
            r.site == "store.write" and r.mode == "corrupt" for r in self.rules
        )

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form (schema ``repro.fault_plan/1``)."""
        return {
            "schema": "repro.fault_plan/1",
            "name": self.name,
            "seed": self.seed,
            "rules": [
                {k: (list(v) if isinstance(v, tuple) else v)
                 for k, v in asdict(r).items()}
                for r in self.rules
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; validates the result."""
        if not isinstance(doc, dict):
            raise ParameterError(f"fault plan must be a JSON object, got {type(doc).__name__}")
        schema = doc.get("schema", "repro.fault_plan/1")
        if schema != "repro.fault_plan/1":
            raise ParameterError(f"unknown fault plan schema {schema!r}")
        rules = []
        for raw in doc.get("rules", []):
            if not isinstance(raw, dict) or "site" not in raw:
                raise ParameterError(f"bad fault rule {raw!r} (need at least a site)")
            known = {f for f in FaultRule.__dataclass_fields__}
            unknown = set(raw) - known
            if unknown:
                raise ParameterError(
                    f"unknown fault rule field(s) {sorted(unknown)} in {raw!r}"
                )
            kwargs = dict(raw)
            if "at" in kwargs:
                kwargs["at"] = tuple(kwargs["at"])
            rules.append(FaultRule(**kwargs))
        return cls(
            seed=int(doc.get("seed", 0)),
            rules=tuple(rules),
            name=str(doc.get("name", "")),
        ).validate()

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    @classmethod
    def load(cls, source: str) -> "FaultPlan":
        """Load a plan from a file path, or parse inline JSON.

        Anything starting with ``{`` is treated as inline JSON (the
        ``repro sweep --fault-plan '{...}'`` form); otherwise ``source``
        is a path to a JSON file.
        """
        text = source.strip()
        if text.startswith("{"):
            return cls.loads(text)
        if not os.path.exists(source):
            raise ParameterError(f"fault plan file not found: {source}")
        with open(source) as fh:
            return cls.loads(fh.read())

    def dump(self, path: str) -> None:
        """Write the plan as pretty JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")
