"""Deterministic fault injection and recovery for the reproduction harness.

The paper argues that Balance Sort's invariants make bucket readback
robust to adversarial block placement; this package applies the same
discipline to the *harness itself*.  A seeded :class:`FaultPlan` turns
the simulators and the sweep runner into a chaos rig whose faults are a
pure function of ``(plan, cell, attempt)`` — never of scheduling — which
makes the headline guarantee testable at diff threshold 0: **under any
transient plan with retries enabled, sweep payloads are bit-identical to
the fault-free run** (see ``docs/resilience.md``).

Pieces:

* :mod:`repro.resilience.plan` — the fault-plan DSL (:class:`FaultPlan`,
  :class:`FaultRule`; sites, modes, effects, seeded decision hashing);
* :mod:`repro.resilience.injector` — :class:`FaultInjector` (one per
  cell-attempt), the ambient :func:`activate` context consulted by
  :class:`~repro.pdm.machine.ParallelDiskMachine`, the parent-side
  :func:`exec_decision` crash attributor, and
  :func:`inject_cache_faults` for data-at-rest cache damage;
* :mod:`repro.resilience.journal` — :class:`SweepJournal`, the fsynced
  checkpoint log behind ``repro sweep --journal/--resume``.
"""

from __future__ import annotations

from .injector import (
    FaultInjector,
    activate,
    active_fault_injector,
    exec_decision,
    inject_cache_faults,
)
from .journal import JOURNAL_SCHEMA, SweepJournal, grid_fingerprint
from .plan import (
    EFFECTS,
    MODES,
    SITES,
    FaultPlan,
    FaultRule,
    corruption_seed,
    decision_unit,
)

__all__ = [
    "EFFECTS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "JOURNAL_SCHEMA",
    "MODES",
    "SITES",
    "SweepJournal",
    "activate",
    "active_fault_injector",
    "corruption_seed",
    "decision_unit",
    "exec_decision",
    "grid_fingerprint",
    "inject_cache_faults",
]
