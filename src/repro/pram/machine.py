"""PRAM cost accountant.

A :class:`PRAM` does not itself move data — the primitives in
:mod:`repro.pram.primitives` do, using vectorized NumPy — it *meters* them.
Each primitive reports its total ``work`` (operation count over all
processors) and its ``depth`` (longest dependency chain).  Under Brent's
scheduling principle a machine with ``P`` processors executes such a step in
at most ``ceil(work / P) + depth`` parallel time, which is the charge we
apply.  This makes ``time`` an upper-bound model and ``work`` exact, matching
how the paper states its internal-processing bounds.

Variants:

* ``EREW`` — exclusive read, exclusive write (the interconnect assumed by
  Theorems 2 and 3 and by Cole's merge sort);
* ``CREW`` — concurrent read allowed;
* ``CRCW`` — both concurrent; the paper requires CRCW for the parallel disk
  model when ``log(M/B) = o(log M)`` (Section 5).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..exceptions import ConcurrencyViolation, ParameterError

__all__ = ["Variant", "PRAM", "StepRecord"]


class Variant(enum.Enum):
    """PRAM concurrency discipline."""

    EREW = "EREW"
    CREW = "CREW"
    CRCW = "CRCW"

    @property
    def concurrent_read(self) -> bool:
        return self in (Variant.CREW, Variant.CRCW)

    @property
    def concurrent_write(self) -> bool:
        return self is Variant.CRCW


@dataclass
class StepRecord:
    """One charged primitive invocation (kept when tracing is enabled)."""

    label: str
    work: int
    depth: int
    time: int


@dataclass
class PRAM:
    """Cost-accounted PRAM with ``processors`` CPUs.

    Attributes
    ----------
    work:
        Total operations executed so far (exact, machine-independent).
    time:
        Parallel time steps charged so far (Brent upper bound).
    """

    processors: int
    variant: Variant = Variant.EREW
    trace: bool = False
    work: int = 0
    time: int = 0
    steps: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ParameterError(f"need >= 1 processor, got {self.processors}")
        if isinstance(self.variant, str):
            self.variant = Variant(self.variant.upper())
        # Observability (optional; None keeps `charge` untouched).
        self._obs_scope = None
        self._obs_labels = None
        self._m_charge = None
        self._label_counters: dict = {}

    def attach_obs(self, obs, scope: str = "pram") -> None:
        """Attach an :class:`~repro.obs.Observation`: per-charge metrics.

        Under ``obs.scope(scope)``: counters ``work``/``time``/``charges``
        plus a ``labels`` child scope with one ``work`` counter per charge
        label — the per-primitive CPU breakdown (partition vs. matching vs.
        matrix upkeep) the Theorem-1 internal-processing claim decomposes
        into.
        """
        self._obs_scope = obs.scope(scope)
        self._obs_labels = self._obs_scope.scope("labels")
        self._m_charge = None
        self._label_counters = {}

    def detach_obs(self) -> None:
        """Remove the attached observation (``charge`` is unmetered again)."""
        self._obs_scope = self._obs_labels = None
        self._m_charge = None
        self._label_counters = {}

    def charge(self, work: int, depth: int, label: str = "") -> int:
        """Charge one primitive: ``time += ceil(work/P) + depth``.

        Returns the time charged for this step.
        """
        if work < 0 or depth < 0:
            raise ParameterError("work and depth must be non-negative")
        # P == 1: ceil(work/1) == work exactly (and dodges the float hop).
        if self.processors == 1:
            step_time = work + depth
        else:
            step_time = math.ceil(work / self.processors) + depth
        self.work += work
        self.time += step_time
        if self.trace:
            self.steps.append(StepRecord(label, work, depth, step_time))
        if self._obs_scope is not None:
            m = self._m_charge
            if m is None:
                # Lazily cached on first charge so a machine that never
                # charges exports exactly the instruments it always did.
                scope = self._obs_scope
                m = self._m_charge = (
                    scope.counter("work"),
                    scope.counter("time"),
                    scope.counter("charges"),
                )
            m[0].inc(work)
            m[1].inc(step_time)
            m[2].inc()
            lc = self._label_counters.get(label)
            if lc is None:
                lc = self._label_counters[label] = self._obs_labels.counter(
                    label or "unlabeled"
                )
            lc.inc(work)
        return step_time

    def require_concurrent_read(self, context: str = "") -> None:
        """Raise unless this machine permits concurrent reads."""
        if not self.variant.concurrent_read:
            raise ConcurrencyViolation(
                f"concurrent read needed{f' for {context}' if context else ''} "
                f"but machine is {self.variant.value}"
            )

    def require_concurrent_write(self, context: str = "") -> None:
        """Raise unless this machine permits concurrent writes."""
        if not self.variant.concurrent_write:
            raise ConcurrencyViolation(
                f"concurrent write needed{f' for {context}' if context else ''} "
                f"but machine is {self.variant.value}"
            )

    def reset(self) -> None:
        """Zero the counters and any attached metrics scope."""
        self.work = 0
        self.time = 0
        self.steps.clear()
        if self._obs_scope is not None:
            self._obs_scope.reset()

    def snapshot(self) -> dict:
        """Current counters as a plain dict (for reporting)."""
        return {"processors": self.processors, "work": self.work, "time": self.time}
