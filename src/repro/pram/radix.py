"""Operational LSD radix sort on a CRCW PRAM.

The Section 5 internal processing uses "an algorithm of Rajasekaran and
Reif [RaR] as part of a radix sort" — which is why the parallel-disk
theorem needs a CRCW interconnect when ``log(M/B) = o(log M)``.  The
charged model lives in :func:`repro.pram.sorting.rajasekaran_reif_radix`;
this module is the *operational* counterpart: a least-significant-digit
radix sort whose every pass really executes on the machine (vectorized
histogram, prefix sum, scatter) with the canonical charges:

=====================  =======================  ==================
pass stage             work                     depth
=====================  =======================  ==================
digit extraction       n                        1
histogram (CRCW)       n + 2^r                  1 (concurrent +=)
prefix over counters   2·2^r                    2r
stable scatter         n                        1 (CRCW arbitration)
=====================  =======================  ==================

Total over ``⌈key_bits/r⌉`` passes: ``O(n·key_bits/r)`` work — linear in n
for fixed-width keys, the property the [RaR] charge encodes asymptotically.
"""

from __future__ import annotations

import numpy as np

from ..records import RECORD_DTYPE, composite_keys
from .machine import PRAM
from .primitives import log2_ceil

__all__ = ["radix_sort", "radix_pass_count"]


def radix_pass_count(key_bits: int, digit_bits: int) -> int:
    """Number of LSD passes for ``key_bits``-bit keys, ``digit_bits`` per pass."""
    if digit_bits < 1:
        raise ValueError("digit_bits must be >= 1")
    return -(-key_bits // digit_bits)


def radix_sort(
    machine: PRAM,
    values: np.ndarray,
    key_bits: int = 64,
    digit_bits: int = 8,
) -> np.ndarray:
    """Sort values (plain uint or record arrays) by operational LSD radix.

    Requires a CRCW machine (the histogram and scatter stages use
    concurrent writes).  Record arrays sort in composite (key, rid) order;
    stability of each counting pass makes the whole sort stable.
    """
    machine.require_concurrent_write("radix sort histogram/scatter")
    original = values
    if values.dtype == RECORD_DTYPE:
        keys = composite_keys(values).copy()
    else:
        keys = np.asarray(values, dtype=np.uint64).copy()
    n = int(keys.size)
    if n <= 1:
        machine.charge(work=1, depth=1, label="radix-trivial")
        return original.copy()

    order = np.arange(n)
    radix = 1 << digit_bits
    mask = np.uint64(radix - 1)
    passes = radix_pass_count(key_bits, digit_bits)

    for p in range(passes):
        shift = np.uint64(p * digit_bits)
        digits = (keys >> shift) & mask
        machine.charge(work=n, depth=1, label="radix-digits")
        counts = np.bincount(digits, minlength=radix)
        machine.charge(work=n + radix, depth=1, label="radix-histogram")
        machine.charge(work=2 * radix, depth=2 * log2_ceil(radix), label="radix-prefix")
        # Stable scatter: an element's destination is its rank in the
        # stable digit order (= digit-segment start + within-digit rank,
        # which is what the counters + prefix compute on the real machine).
        dest = np.empty(n, dtype=np.int64)
        dest[np.argsort(digits, kind="stable")] = np.arange(n)
        new_keys = np.empty_like(keys)
        new_order = np.empty_like(order)
        new_keys[dest] = keys
        new_order[dest] = order
        keys, order = new_keys, new_order
        machine.charge(work=n, depth=1, label="radix-scatter")

    return original[order]
