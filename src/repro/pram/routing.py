"""Monotone routing on a PRAM.

The paper uses monotone routing ([Lei, Section 3.4.3]) three times: to pack
unprocessed virtual blocks out of the way (Algorithm 3, step 9), to route
reassigned blocks in Rearrange (Algorithm 6, step 4), and inside the
concurrent-write simulation (Section 4.2).  A routing instance is *monotone*
when the destination sequence of the (packed) sources is strictly
increasing — exactly what the block-compaction uses — and then it runs in
``O(log n)`` time with ``n`` processors.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConcurrencyViolation
from .machine import PRAM
from .primitives import log2_ceil

__all__ = ["monotone_route", "is_monotone_instance"]


def is_monotone_instance(src: np.ndarray, dst: np.ndarray) -> bool:
    """True when sources and destinations are each strictly increasing."""
    return bool(
        np.all(np.diff(src) > 0) and np.all(np.diff(dst) > 0)
    ) if src.size > 1 else True


def monotone_route(
    machine: PRAM,
    array: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Move ``array[src[i]] -> out[dst[i]]`` for a monotone instance.

    Charges ``O(log n)`` depth and ``O(n)`` work.  Destinations must be
    distinct (they are, in a monotone instance); on an EREW machine duplicate
    destinations raise :class:`ConcurrencyViolation`.
    """
    src = np.asarray(src)
    dst = np.asarray(dst)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have equal length")
    if not is_monotone_instance(src, dst):
        raise ValueError("not a monotone routing instance (indices must increase)")
    if dst.size and not machine.variant.concurrent_write:
        # monotone ⇒ distinct, but guard against caller bugs explicitly
        if np.unique(dst).size != dst.size:
            raise ConcurrencyViolation("duplicate destinations on EREW machine")
    n = int(max(array.size, dst.max() + 1 if dst.size else 0))
    if out is None:
        out = array.copy()
    out[dst] = array[src]
    machine.charge(work=max(n, 1), depth=log2_ceil(max(n, 2)), label="monotone-route")
    return out
