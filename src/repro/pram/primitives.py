"""Data-parallel PRAM primitives with cost charging.

Every function takes the :class:`~repro.pram.machine.PRAM` first, performs
the operation with vectorized NumPy (views, no gratuitous copies — per the
scientific-Python optimization guides), and charges the canonical
work/depth of the standard EREW algorithm for that primitive:

==============================  ============  ===========
primitive                       work          depth
==============================  ============  ===========
elementwise map                 n             1
prefix scan                     2n            2·ceil(log n)
segmented scan                  3n            2·ceil(log n)
broadcast (1 → n)               n             ceil(log n)
pack / compact                  3n            2·ceil(log n)
partition among s pivots        n·ceil(log s) ceil(log s)
concurrent-write resolution     sort + scan (Section 4.2 recipe)
==============================  ============  ===========
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ConcurrencyViolation
from .machine import PRAM

__all__ = [
    "log2_ceil",
    "elementwise",
    "prefix_sum",
    "segmented_prefix_sum",
    "broadcast",
    "compact",
    "partition_by_pivots",
    "resolve_concurrent_writes",
]


def log2_ceil(n: int) -> int:
    """``max(1, ceil(log2 n))`` — the paper's ``log`` is ``max{1, log2}``."""
    if n <= 2:
        return 1
    return int(math.ceil(math.log2(n)))


def elementwise(machine: PRAM, arr: np.ndarray, fn, label: str = "map") -> np.ndarray:
    """Apply ``fn`` to every element: work n, depth 1."""
    out = fn(arr)
    machine.charge(work=int(arr.size), depth=1, label=label)
    return out


def prefix_sum(machine: PRAM, arr: np.ndarray, inclusive: bool = True) -> np.ndarray:
    """Parallel prefix sum (scan): work 2n, depth 2·log n (EREW-safe)."""
    n = int(arr.size)
    out = np.cumsum(arr)
    if not inclusive:
        out = np.concatenate([[0], out[:-1]]).astype(out.dtype)
    machine.charge(work=2 * n, depth=2 * log2_ceil(max(n, 1)), label="scan")
    return out


def segmented_prefix_sum(machine: PRAM, arr: np.ndarray, segment_ids: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum restarted at each new segment id.

    ``segment_ids`` must be non-decreasing (segments are contiguous), as in
    the Section 4.2 concurrent-write recipe where messages are pre-sorted by
    destination.
    """
    n = int(arr.size)
    if n == 0:
        return arr.copy()
    if np.any(segment_ids[1:] < segment_ids[:-1]):
        raise ValueError("segment ids must be non-decreasing (contiguous segments)")
    total = np.cumsum(arr)
    # Subtract, from each position, the cumulative total before its segment.
    first = np.concatenate([[True], segment_ids[1:] != segment_ids[:-1]])
    starts = np.flatnonzero(first)
    seg_offsets = np.empty(starts.size, dtype=total.dtype)
    seg_offsets[0] = 0
    seg_offsets[1:] = total[starts[1:] - 1]
    seg_index = np.cumsum(first) - 1
    out = total - seg_offsets[seg_index]
    machine.charge(work=3 * n, depth=2 * log2_ceil(n), label="segmented-scan")
    return out


def broadcast(machine: PRAM, value, n: int) -> np.ndarray:
    """Replicate one value to n processors: EREW doubling tree."""
    out = np.full(n, value)
    machine.charge(work=int(n), depth=log2_ceil(max(n, 1)), label="broadcast")
    return out


def compact(machine: PRAM, arr: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Pack the elements where ``mask`` is True into a dense prefix (scan + scatter)."""
    out = arr[mask]
    n = int(arr.size)
    machine.charge(work=3 * n, depth=2 * log2_ceil(max(n, 1)), label="compact")
    return out


def partition_by_pivots(machine: PRAM, keys: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """Bucket index of each key among ``s`` sorted pivots (binary search each).

    This is the paper's "partition DB elements among sqrt(M/B) sorted
    partition elements" step (Theorem 1): work ``n·log s``, depth ``log s``.
    ``pivots`` must be sorted ascending; bucket ``i`` receives keys in
    ``(pivots[i-1], pivots[i]]``-style half-open ranges via ``searchsorted``.
    """
    n = int(keys.size)
    s = int(pivots.size) + 1
    buckets = np.searchsorted(pivots, keys, side="right")
    machine.charge(work=n * log2_ceil(s), depth=log2_ceil(s), label="partition")
    return buckets


def resolve_concurrent_writes(
    machine: PRAM, destinations: np.ndarray, priorities: np.ndarray | None = None
):
    """Simulate a priority concurrent write on a weaker machine (Section 4.2).

    The paper's recipe: sort the messages by destination, run a segmented
    prefix per unique key to find each segment's winner, keep only the first
    message per segment, and monotone-route winners to their destinations.
    Returns ``(winner_index_per_destination_order, unique_destinations)``
    where winners are the positions (in the original arrays) of the
    smallest-priority message for each distinct destination.

    On a CRCW machine the same result is charged at constant depth instead.
    """
    n = int(destinations.size)
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=destinations.dtype)
    if priorities is None:
        priorities = np.arange(n)
    if machine.variant.concurrent_write:
        # Native CRCW priority write: one step.
        machine.charge(work=n, depth=1, label="crcw-write")
    else:
        # sort by (destination, priority): charged as an EREW sort
        depth = log2_ceil(n)
        machine.charge(work=n * depth, depth=depth, label="sort-by-dest")
        # segmented prefix + monotone route
        machine.charge(work=3 * n, depth=2 * depth, label="segmented-prefix")
        machine.charge(work=n, depth=depth, label="monotone-route")
    order = np.lexsort((priorities, destinations))
    d_sorted = destinations[order]
    first = np.concatenate([[True], d_sorted[1:] != d_sorted[:-1]])
    winners = order[first]
    return winners, d_sorted[first]
