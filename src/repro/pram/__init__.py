"""PRAM substrate: cost-accounted data-parallel machine and primitives.

The paper's internal-processing results (Theorem 1's ``Θ((N/P) log N)`` work
bound, the ``O(log H)`` matching time of Section 4.2) are statements about
PRAM *operation counts*, not wall-clock.  :class:`repro.pram.machine.PRAM`
executes vectorized NumPy primitives while charging ``work`` (total
operations) and ``time`` (parallel steps under Brent scheduling,
``ceil(work/P) + depth``) for each.  EREW access discipline is enforced at
the primitive level: primitives that would require concurrent reads or
writes raise unless the machine is CREW/CRCW.
"""

from .machine import PRAM, Variant
from . import primitives, radix, routing, sorting

__all__ = ["PRAM", "Variant", "primitives", "radix", "routing", "sorting"]
