"""PRAM sorting: an operational EREW network sort plus charged cost models.

Three sorters, matching the citations the paper builds on:

* :func:`batcher_sort` — Batcher's odd-even merge sort, *operational*: it
  executes every compare–exchange round on the machine (work ``n/2`` per
  round, depth 1 per round, ``O(log² n)`` rounds).  EREW-safe by
  construction (each round touches each cell once).  Used when step-exact
  execution matters (tests of the accounting itself).
* :func:`cole_merge_sort` — Cole's EREW merge sort [Col], *charged model*:
  the paper invokes it for the parallel-disk internal processing (Section 5).
  Data is sorted with NumPy; the machine is charged the published
  ``Θ(n log n)`` work / ``Θ(log n)`` depth.
* :func:`rajasekaran_reif_radix` — the [RaR] randomized radix sort used "as
  part of a radix sort" in Section 5, *charged model*: ``O(n)`` work,
  ``O(log n / log log n)`` depth, requires concurrent writes.

The charged models are substitutions documented in DESIGN.md §2: the
theorems consume only these asymptotic charges, so the accounting — not a
reimplementation of Cole's ranks-and-samples machinery — is what the
reproduction needs.  Constants are explicit and configurable so benchmark
fits can report them.
"""

from __future__ import annotations

import math

import numpy as np

from ..records import RECORD_DTYPE, argsort_records, composite_keys
from .machine import PRAM
from .primitives import log2_ceil

__all__ = [
    "batcher_sort",
    "batcher_round_count",
    "cole_merge_sort",
    "rajasekaran_reif_radix",
    "COLE_WORK_CONSTANT",
    "COLE_DEPTH_CONSTANT",
]

#: Constants used by the charged Cole model; Cole reports small constants
#: (~2-4 comparisons per element per level); we charge 2·n·log n work.
COLE_WORK_CONSTANT = 2
COLE_DEPTH_CONSTANT = 4


def _as_sortable(values: np.ndarray) -> np.ndarray:
    """Record arrays sort by composite key; plain arrays sort as-is."""
    if values.dtype == RECORD_DTYPE:
        return composite_keys(values)
    return values


def batcher_round_count(n: int) -> int:
    """Number of compare-exchange rounds of odd-even merge sort on n=2^k items."""
    k = int(math.log2(n))
    return k * (k + 1) // 2


def batcher_sort(machine: PRAM, values: np.ndarray) -> np.ndarray:
    """Operational Batcher odd-even merge sort.

    ``len(values)`` is padded to the next power of two with max-key
    sentinels.  Every compare-exchange round really executes (vectorized,
    one round = one charged step of depth 1) so the machine's counters
    reflect the true ``O(log² n)``-depth, ``O(n log² n)``-work network.
    Returns a new sorted array of the original length (record arrays sort in
    composite (key, rid) order).
    """
    original = values
    keys = _as_sortable(values).astype(np.uint64, copy=True)
    n0 = int(keys.size)
    if n0 <= 1:
        return original.copy()
    n = 1 << int(math.ceil(math.log2(n0)))
    pad = np.full(n - n0, np.iinfo(np.uint64).max, dtype=np.uint64)
    work = np.concatenate([keys, pad])
    perm = np.arange(n)

    # Iterative odd-even merge sort (Batcher 1968).  In pass (p, k) element
    # j is compared with j+k when j has the k-bit clear in the sub-pass
    # pattern: classic scalar form
    #   for j in range(k % p, n - k, 2k):
    #     for i in range(min(k, n - j - k)):
    #       if (i + j) // (2p) == (i + j + k) // (2p): exchange(i+j, i+j+k)
    p = 1
    while p < n:
        k = p
        while k >= 1:
            lo, hi = _batcher_pairs(n, p, k)
            a, b = work[lo], work[hi]
            swap = a > b
            if np.any(swap):
                ls, hs = lo[swap], hi[swap]
                work[ls], work[hs] = b[swap], a[swap]
                perm[ls], perm[hs] = perm[hs].copy(), perm[ls].copy()
            machine.charge(work=max(int(lo.size), 1), depth=1, label="batcher-round")
            k //= 2
        p *= 2

    order = perm[perm < n0]
    return original[order]


def _batcher_pairs(n: int, p: int, k: int):
    """Vectorized index pairs for round (p, k) of iterative odd-even merge sort."""
    j = np.arange(k % p, n - k)
    block_ok = (j // (2 * p)) == ((j + k) // (2 * p))
    # j ranges over arithmetic progressions of stride 2k starting at k % p,
    # each of length k: position within stride must be < k.
    offset = (j - (k % p)) % (2 * k)
    mask = block_ok & (offset < k)
    lo = j[mask]
    return lo, lo + k


def cole_merge_sort(machine: PRAM, values: np.ndarray) -> np.ndarray:
    """Cole's EREW merge sort as a charged cost model.

    Charges ``COLE_WORK_CONSTANT·n·log n`` work and
    ``COLE_DEPTH_CONSTANT·log n`` depth, the bounds of [Col]; returns the
    sorted array (records in composite order).
    """
    n = int(values.size)
    if n <= 1:
        machine.charge(work=1, depth=1, label="cole-sort")
        return values.copy()
    lg = log2_ceil(n)
    machine.charge(work=COLE_WORK_CONSTANT * n * lg, depth=COLE_DEPTH_CONSTANT * lg, label="cole-sort")
    if values.dtype == RECORD_DTYPE:
        return values[argsort_records(values)]
    return np.sort(values)


def rajasekaran_reif_radix(machine: PRAM, values: np.ndarray, key_bits: int = 40) -> np.ndarray:
    """[RaR] randomized radix sort, charged model (CRCW required).

    ``O(n)`` work and ``O(log n / log log n)`` depth for keys of
    ``n^{O(1)}`` magnitude.  The paper uses it inside the parallel-disk
    internal processing (Section 5), which is why that theorem needs a CRCW
    PRAM when ``log(M/B) = o(log M)``.
    """
    machine.require_concurrent_write("Rajasekaran-Reif radix sort")
    n = int(values.size)
    if n <= 1:
        machine.charge(work=1, depth=1, label="rr-radix")
        return values.copy()
    lg = log2_ceil(n)
    lglg = max(1, int(math.ceil(math.log2(max(lg, 2)))))
    machine.charge(work=4 * n, depth=max(1, lg // lglg), label="rr-radix")
    if values.dtype == RECORD_DTYPE:
        return values[argsort_records(values)]
    return np.sort(values)
