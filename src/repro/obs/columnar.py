"""Columnar (structure-of-arrays) event journal for the hot trace path.

The simulators emit ~100 k point events per E1 cell (one per parallel
I/O, one per Balance round), and the payload contract freezes every one
of them: the exec payload's ``trace`` is a list of plain dicts with a
fixed schema.  Building those dicts *at emit time* is the single largest
per-round constant left after the fused I/O plans — ~100 k dict + kwargs
allocations per cell that exist only to be JSON-serialized once at the
end of the run.

A :class:`ColumnarJournal` stores the hot events as typed scalar columns
instead: each registered *channel* (one fixed ``(name, attr-keys)``
shape) appends ``(seq, span, ts, *values)`` onto parallel Python lists
(which grow geometrically, like any list), and the event dicts are
materialized **only at the serialization boundary** — bit-identical to
the dicts the classic path would have built, in the same global order
(the shared ``seq`` counter interleaves channels and cold literal
events chronologically).

Cold events — span begin/end records, rare diagnostics, anything emitted
through the generic ``Tracer.event`` API — are stored as ready-made
*literal* dicts carrying their own sequence number, so the journal never
changes what an event looks like, only when the dict is allocated.

Appender contract
-----------------
Values appended through a channel MUST be plain ``str`` / ``int`` /
``float`` / ``bool`` / ``None`` scalars (not numpy scalars, not tuples).
This is not checked per append — it is what lets the exec layer skip the
canonicalizing JSON round-trip for the trace portion of a payload
(:func:`json_roundtrip_safe` covers the few literal records instead).
"""

from __future__ import annotations

__all__ = ["ColumnarJournal", "EventChannel", "json_roundtrip_safe"]


def json_roundtrip_safe(obj) -> bool:
    """True when ``json.loads(json.dumps(obj))`` is value-identical to ``obj``.

    Exact-type check on purpose: a numpy ``float64`` *is* a ``float``
    subclass and would serialize fine, but the round-trip changes its
    type to plain ``float`` — callers that skip the round-trip based on
    this predicate must end up with exactly the shapes the round-trip
    would have produced.  Tuples fail (JSON turns them into lists);
    non-``str`` dict keys fail (JSON stringifies them).
    """
    t = type(obj)
    if t is int or t is float or t is str or t is bool or obj is None:
        return True
    if t is dict:
        for k, v in obj.items():
            if type(k) is not str or not json_roundtrip_safe(v):
                return False
        return True
    if t is list:
        for v in obj:
            if not json_roundtrip_safe(v):
                return False
        return True
    return False


class EventChannel:
    """One fixed event shape: parallel columns plus a fast appender.

    Channels are deliberately *not* deduplicated by ``(name, keys)``:
    every requester (one Balance engine, one disk machine) gets private
    columns, so deferred metric replay can keep an independent cursor
    per requester while materialization still interleaves everything
    chronologically through the shared sequence counter.
    """

    __slots__ = ("name", "keys", "seqs", "spans", "ts", "cols", "append")

    def __init__(self, journal: "ColumnarJournal", tracer, name: str,
                 keys: tuple):
        self.name = name
        self.keys = tuple(keys)
        self.seqs: list = []
        self.spans: list = []
        self.ts: list = []
        self.cols: list = [[] for _ in self.keys]
        # Build the appender closure with every per-event attribute
        # lookup hoisted: the only per-call work is the seq bump, the
        # span peek, the (usually pinned-to-zero) clock read, and one
        # list append per column.
        count = journal._count
        seqs_append = self.seqs.append
        spans_append = self.spans.append
        ts_append = self.ts.append
        stack = tracer._stack
        clock = tracer._clock
        epoch = tracer._epoch
        cols = self.cols
        if len(cols) == 1:
            col0_append = cols[0].append

            def append(v0):
                seqs_append(count[0])
                count[0] += 1
                spans_append(stack[-1].span_id if stack else None)
                t = clock() - epoch
                ts_append(round(t, 6) if t else 0.0)
                col0_append(v0)

        elif len(cols) == 2:
            col0_append = cols[0].append
            col1_append = cols[1].append

            def append(v0, v1):
                seqs_append(count[0])
                count[0] += 1
                spans_append(stack[-1].span_id if stack else None)
                t = clock() - epoch
                ts_append(round(t, 6) if t else 0.0)
                col0_append(v0)
                col1_append(v1)

        else:

            def append(*values):
                seqs_append(count[0])
                count[0] += 1
                spans_append(stack[-1].span_id if stack else None)
                t = clock() - epoch
                ts_append(round(t, 6) if t else 0.0)
                for col, v in zip(cols, values):
                    col.append(v)

        self.append = append

    def __len__(self) -> int:
        return len(self.seqs)


class ColumnarJournal:
    """Shared store for one tracer's events: channels + literal records."""

    __slots__ = ("_count", "channels", "_literal_seqs", "_literals",
                 "_literals_checked", "_literals_safe")

    def __init__(self):
        # Global sequence counter, shared (as a one-slot list) with every
        # channel appender so materialization can restore total order.
        self._count = [0]
        self.channels: list[EventChannel] = []
        self._literal_seqs: list[int] = []
        self._literals: list[dict] = []
        self._literals_checked = 0
        self._literals_safe = True

    @property
    def n(self) -> int:
        """Total events recorded (channels + literals)."""
        return self._count[0]

    def literal(self, record: dict) -> None:
        """Append a ready-made event dict at the next sequence number."""
        count = self._count
        self._literal_seqs.append(count[0])
        count[0] += 1
        self._literals.append(record)

    def channel(self, tracer, name: str, keys: tuple) -> EventChannel:
        """Open a new private channel for one fixed event shape."""
        ch = EventChannel(self, tracer, name, keys)
        self.channels.append(ch)
        return ch

    def materialize(self) -> list[dict]:
        """All events as dicts, in emission order.

        Each channel row becomes exactly the dict the classic path
        builds in ``Tracer.event``: ``{"ev": "event", "span": ...,
        "name": ..., "ts": ..., "attrs": {keys in declaration order}}``.
        """
        out: list = [None] * self._count[0]
        for seq, rec in zip(self._literal_seqs, self._literals):
            out[seq] = rec
        for ch in self.channels:
            name = ch.name
            keys = ch.keys
            if len(keys) == 1:
                k0 = keys[0]
                for seq, span, t, v0 in zip(ch.seqs, ch.spans, ch.ts,
                                            ch.cols[0]):
                    out[seq] = {"ev": "event", "span": span, "name": name,
                                "ts": t, "attrs": {k0: v0}}
            else:
                for seq, span, t, *values in zip(ch.seqs, ch.spans, ch.ts,
                                                 *ch.cols):
                    out[seq] = {"ev": "event", "span": span, "name": name,
                                "ts": t, "attrs": dict(zip(keys, values))}
        return out

    def literals_json_safe(self) -> bool:
        """Whether every literal record survives a JSON round-trip as-is.

        Channel values are plain scalars by the appender contract, so the
        literals are the only part that needs checking; the check is
        incremental (each literal is scanned once).
        """
        if not self._literals_safe:
            return False
        literals = self._literals
        for rec in literals[self._literals_checked:]:
            if not json_roundtrip_safe(rec):
                self._literals_safe = False
                break
        self._literals_checked = len(literals)
        return self._literals_safe
