"""Structural diffing of run reports, bench points, and trace summaries.

A regression gate needs one primitive: "these two JSON documents describe
the same experiment — did anything move more than I allow?".  This module
provides it for every JSON surface the repo emits — ``repro.run_report/1``
reports, ``repro.bench_point/1`` / ``repro.bench_result/1`` sidecars
(``benchmarks/results/*.json``, ``BENCH_*.json``), trace summaries, audit
and profile dicts.

:func:`diff_runs` flattens both documents to dotted paths
(``e1_grid.rows[3].arena_s``), coerces numeric strings (the bench sidecar
tables store rows as string lists), and classifies every path:

* **numeric pair** — relative delta ``(b - a) / |a|`` checked against the
  matching threshold (``0/0`` is equal; a zero baseline with a non-zero
  new value is an infinite delta and always exceeds any finite
  threshold);
* **non-numeric pair** — equal or ``changed``;
* **one-sided** — ``added`` / ``removed`` (regressions only under
  ``strict``).

Thresholds are *relative*: ``threshold=0.0`` demands bit-identical
numbers (the determinism gate — serial vs ``--jobs N`` sweeps, fresh vs
recorded simulated-I/O sidecars), while e.g. ``threshold=2.0`` allows up
to 3x growth (the wall-clock gate CI uses: "measured ≤ 3 × recorded" is
exactly "relative delta ≤ 2.0").  Per-path rules (``fnmatch`` patterns,
first match wins) override the default, and ``ignore`` patterns mask
paths that legitimately move (hosts, timestamps, wall-clock seconds in a
determinism gate).

The exit-code contract (used by ``repro diff`` and CI): regressions →
non-zero, identical or within threshold → zero.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

__all__ = ["flatten", "DiffEntry", "DiffResult", "diff_runs", "load_doc",
           "DIFF_SCHEMA"]

DIFF_SCHEMA = "repro.diff/1"


def load_doc(path_or_doc) -> dict:
    """Accept a dict as-is or load JSON from a path."""
    if isinstance(path_or_doc, dict):
        return path_or_doc
    with open(path_or_doc) as fh:
        return json.load(fh)


def _coerce(value):
    """Numeric-string coercion: bench sidecar tables store numbers as strings."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                f = float(value)
            except ValueError:
                return value
            return f if math.isfinite(f) else value
    return value


def flatten(doc, prefix: str = "") -> dict:
    """Flatten nested dicts/lists into ``{"a.b[2].c": leaf}`` paths.

    Leaves are scalars (numeric strings coerced); empty dicts/lists
    flatten to themselves so their presence still diffs.
    """
    flat: dict = {}

    def walk(node, path):
        if isinstance(node, dict):
            if not node:
                flat[path or "."] = {}
                return
            for key in node:
                walk(node[key], f"{path}.{key}" if path else str(key))
        elif isinstance(node, (list, tuple)):
            if not node:
                flat[path or "."] = []
                return
            for i, item in enumerate(node):
                walk(item, f"{path}[{i}]")
        else:
            flat[path or "."] = _coerce(node)

    walk(doc, prefix)
    return flat


@dataclass
class DiffEntry:
    """One differing path."""

    path: str
    kind: str  # "exceeds" | "changed" | "added" | "removed" | "within"
    a: object = None
    b: object = None
    rel_delta: float | None = None
    threshold: float | None = None

    def to_dict(self) -> dict:
        """JSON-safe view; non-finite ``rel_delta`` serialises as ``"inf"``."""
        d = {"path": self.path, "kind": self.kind, "a": self.a, "b": self.b}
        if self.rel_delta is not None:
            d["rel_delta"] = (
                self.rel_delta if math.isfinite(self.rel_delta) else "inf"
            )
        if self.threshold is not None:
            d["threshold"] = self.threshold
        return d


@dataclass
class DiffResult:
    """Everything :func:`diff_runs` found, split by severity."""

    regressions: list = field(default_factory=list)
    changes: list = field(default_factory=list)  # within threshold / informational
    n_compared: int = 0
    threshold: float = 0.0
    strict: bool = False

    @property
    def ok(self) -> bool:
        """True iff no regression (the exit-code contract)."""
        return not self.regressions

    def to_dict(self) -> dict:
        """JSON-safe view of the verdict (``repro.diff/1``)."""
        return {
            "schema": DIFF_SCHEMA,
            "ok": self.ok,
            "n_compared": self.n_compared,
            "threshold": self.threshold,
            "strict": self.strict,
            "regressions": [e.to_dict() for e in self.regressions],
            "changes": [e.to_dict() for e in self.changes],
        }

    def tables(self):
        """Human rendering: one table per severity bucket (non-empty only)."""
        from ..analysis.reporting import Table

        tables = []
        for title, entries in (
            (f"regressions ({len(self.regressions)})", self.regressions),
            (f"changes within threshold ({len(self.changes)})", self.changes),
        ):
            if not entries:
                continue
            t = Table(["path", "kind", "a", "b", "rel Δ", "threshold"], title=title)
            for e in entries[:50]:
                t.add(
                    e.path, e.kind,
                    "-" if e.a is None else e.a,
                    "-" if e.b is None else e.b,
                    "-" if e.rel_delta is None else (
                        "inf" if not math.isfinite(e.rel_delta)
                        else round(e.rel_delta, 4)
                    ),
                    "-" if e.threshold is None else e.threshold,
                )
            if len(entries) > 50:
                t.add(f"... {len(entries) - 50} more", "", "", "", "", "")
            tables.append(t)
        return tables


def _match_rule(path: str, rules: list[tuple[str, float]],
                default: float) -> float:
    for pattern, threshold in rules:
        if fnmatchcase(path, pattern):
            return threshold
    return default


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_runs(
    a, b,
    threshold: float = 0.0,
    rules: list[tuple[str, float]] | None = None,
    ignore: list[str] | None = None,
    strict: bool = False,
) -> DiffResult:
    """Diff two JSON documents (dicts or paths) with relative thresholds.

    ``threshold`` is the default relative-delta allowance; ``rules`` is an
    ordered list of ``(fnmatch_pattern, threshold)`` overrides (first
    match wins); ``ignore`` patterns drop paths entirely.  ``strict=True``
    also treats added/removed paths and non-numeric changes at
    zero-threshold paths as regressions (a determinism gate wants shape
    changes to fail; a perf gate usually doesn't care).

    Deltas are signed: only *increases* past the threshold regress (a
    faster run is not a regression), except at ``threshold=0.0`` where
    any numeric difference does.
    """
    fa = flatten(load_doc(a))
    fb = flatten(load_doc(b))
    ignore = ignore or []
    rules = rules or []

    def ignored(path: str) -> bool:
        return any(fnmatchcase(path, pat) for pat in ignore)

    result = DiffResult(threshold=threshold, strict=strict)
    paths = list(fa.keys()) + [p for p in fb if p not in fa]
    for path in paths:
        if ignored(path):
            continue
        in_a, in_b = path in fa, path in fb
        if not (in_a and in_b):
            entry = DiffEntry(
                path=path, kind="removed" if in_a else "added",
                a=fa.get(path), b=fb.get(path),
            )
            (result.regressions if strict else result.changes).append(entry)
            continue
        result.n_compared += 1
        va, vb = fa[path], fb[path]
        if _is_number(va) and _is_number(vb):
            if va == vb:
                continue
            if va == 0:
                rel = math.inf if vb > 0 else -math.inf
            else:
                rel = (vb - va) / abs(va)
            limit = _match_rule(path, rules, threshold)
            if limit == 0.0:
                exceeds = True  # any numeric difference at zero threshold
            else:
                exceeds = rel > limit
            entry = DiffEntry(
                path=path, kind="exceeds" if exceeds else "within",
                a=va, b=vb, rel_delta=rel, threshold=limit,
            )
            (result.regressions if exceeds else result.changes).append(entry)
        else:
            if va == vb:
                continue
            entry = DiffEntry(path=path, kind="changed", a=va, b=vb)
            limit = _match_rule(path, rules, threshold)
            if strict and limit == 0.0:
                result.regressions.append(entry)
            else:
                result.changes.append(entry)
    return result
