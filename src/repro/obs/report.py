"""Run reports: metrics + spans merged into one machine-readable dict.

:class:`RunReport` is the JSON surface of a run (``repro sort
--emit-json``): schema-stable (``schema`` key, additive evolution only),
covering per-phase parallel I/Os and CPU/model time, the balance-factor
timeline, and the I/O stripe-width histograms.  :func:`summarize_trace`
derives the same phase/timeline aggregates from a saved JSONL trace, which
is what ``repro report <trace.jsonl>`` prints.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from ..analysis.reporting import Table
from .metrics import Histogram, MetricsRegistry
from .tracer import Observation, read_trace

__all__ = ["RunReport", "render_report", "summarize_trace", "SCHEMA"]

SCHEMA = "repro.run_report/1"

#: Span attributes summed into the per-phase breakdown (everything a
#: machine model attributes to a span).  Additive: new keys may appear.
_COST_KEYS = (
    "ios",
    "read_ios",
    "write_ios",
    "blocks_read",
    "blocks_written",
    "cpu_work",
    "cpu_time",
    "memory_time",
    "interconnect_time",
    "parallel_steps",
    "records",
    "rounds",
    "swapped",
    "unprocessed",
    "match_calls",
)


def summarize_trace(events_or_path: str | Iterable[dict]) -> dict:
    """Aggregate a trace into phases, balance timeline, and I/O histograms.

    Accepts a path to a JSONL trace or an iterable of event dicts (the
    in-memory ``tracer.events``).  Returns::

        {"phases": [{"name", "count", "wall_s", <cost keys...>}, ...],
         "balance_timeline": [{"round", "max_balance_factor", ...}, ...],
         "stripe_width": {"read": {width: count}, "write": {width: count}},
         "n_events": int, "truncated_spans": int}

    Partial traces are first-class: a path is read with
    ``tolerate_truncated_tail=True`` (a run killed mid-write leaves a torn
    final line), and spans that were *begun* but never *ended* — the
    signature of a crash or interrupt inside the span — are counted in
    ``truncated_spans`` rather than raising.  Their costs are simply
    absent from the phase table, which is the honest answer for a run
    that never attributed them.
    """
    if isinstance(events_or_path, str):
        events = read_trace(events_or_path, tolerate_truncated_tail=True)
    else:
        events = list(events_or_path)

    phases: dict[str, dict] = {}
    order: list[str] = []
    timeline: list[dict] = []
    widths = {"read": Histogram("io.read.width"), "write": Histogram("io.write.width")}
    open_spans: set = set()

    for ev in events:
        kind = ev.get("ev")
        name = ev.get("name", "")
        attrs = ev.get("attrs", {}) or {}
        if kind == "begin":
            open_spans.add(ev.get("span"))
        elif kind == "end":
            open_spans.discard(ev.get("span"))
            agg = phases.get(name)
            if agg is None:
                agg = phases[name] = {"name": name, "count": 0, "wall_s": 0.0}
                order.append(name)
            agg["count"] += 1
            agg["wall_s"] = round(agg["wall_s"] + float(ev.get("wall_s", 0.0)), 6)
            for key in _COST_KEYS:
                val = attrs.get(key)
                if isinstance(val, (int, float)) and not isinstance(val, bool):
                    agg[key] = agg.get(key, 0) + val
        elif kind == "event":
            if name == "balance.round":
                timeline.append(dict(attrs))
            elif name in ("io.read", "io.write"):
                width = attrs.get("width", attrs.get("disks"))
                if width is not None:
                    widths[name.split(".", 1)[1]].observe(int(width))
            elif name == "mem.step":
                # hierarchy machines: parallel memory steps tagged with the
                # access kind carry the stripe width of that step.
                step_kind = attrs.get("kind")
                width = attrs.get("width")
                if step_kind in ("read", "write") and width is not None:
                    widths[step_kind].observe(int(width))

    return {
        "phases": [phases[n] for n in order],
        "balance_timeline": timeline,
        "stripe_width": {
            kind: {str(k): v for k, v in sorted(h.counts.items())}
            for kind, h in widths.items()
        },
        "n_events": len(events),
        "truncated_spans": len(open_spans),
    }


class RunReport:
    """One run's observability surface as a schema-stable dict.

    Merge order: registry export under ``metrics``, span/phase aggregates
    under ``phases`` / ``balance_timeline`` / ``stripe_width``, the sort's
    own result summary under ``result``, and the invoking parameters under
    ``params``.
    """

    def __init__(
        self,
        command: str = "",
        params: dict | None = None,
        result: dict | None = None,
        metrics: dict | None = None,
        trace_summary: dict | None = None,
        audit: dict | None = None,
    ):
        self.command = command
        self.params = params or {}
        self.result = result or {}
        self.metrics = metrics or {}
        self.trace_summary = trace_summary or {
            "phases": [], "balance_timeline": [], "stripe_width": {}, "n_events": 0,
        }
        self.audit = audit

    @classmethod
    def from_observation(
        cls,
        obs: Observation,
        command: str = "",
        params: dict | None = None,
        result: dict | None = None,
        audit: dict | None = None,
    ) -> "RunReport":
        """Build a report from a live observation (registry + tracer)."""
        return cls(
            command=command,
            params=params,
            result=result,
            metrics=obs.registry.export(),
            trace_summary=summarize_trace(obs.tracer.events),
            audit=audit,
        )

    # ------------------------------------------------------------- export

    def to_dict(self) -> dict:
        """The schema-stable report dict (see module docstring)."""
        report = {
            "schema": SCHEMA,
            "command": self.command,
            "params": self.params,
            "result": self.result,
            "phases": self.trace_summary.get("phases", []),
            "balance_timeline": self.trace_summary.get("balance_timeline", []),
            "stripe_width": self.trace_summary.get("stripe_width", {}),
            "metrics": self.metrics,
            "n_trace_events": self.trace_summary.get("n_events", 0),
        }
        truncated = self.trace_summary.get("truncated_spans", 0)
        if truncated:
            report["truncated_spans"] = truncated
        if self.audit is not None:
            report["audit"] = self.audit
        return report

    def to_json(self, indent: int | None = 2) -> str:
        """The report as a JSON string (numpy values coerced)."""
        return json.dumps(self.to_dict(), indent=indent, default=_default)

    def write(self, path_or_dash: str) -> None:
        """Write the JSON report to ``path`` (``"-"`` for stdout)."""
        text = self.to_json()
        if path_or_dash == "-":
            print(text)
        else:
            with open(path_or_dash, "w") as fh:
                fh.write(text + "\n")

    # ------------------------------------------------------------- tables

    def tables(self) -> list[Table]:
        """Human rendering: one aligned table per report section."""
        return render_report(self.to_dict())


def _default(value):
    for attr in ("item", "tolist"):
        fn = getattr(value, attr, None)
        if fn is not None:
            return fn()
    return str(value)


def _phase_tables(report: dict) -> list[Table]:
    tables = []
    phases = report.get("phases", [])
    if phases:
        cost_cols = [k for k in _COST_KEYS if any(k in p for p in phases)]
        t = Table(["phase", "count", "wall s"] + cost_cols, title="per-phase breakdown")
        for p in phases:
            t.add(p["name"], p["count"], p["wall_s"], *[p.get(k, 0) for k in cost_cols])
        tables.append(t)
    timeline = report.get("balance_timeline", [])
    if timeline:
        t = Table(
            ["round", "placed", "swapped", "unprocessed", "balance factor"],
            title=f"balance-factor timeline ({len(timeline)} rounds)",
        )
        step = max(1, len(timeline) // 20)  # keep human output bounded
        shown = list(timeline[::step])
        if timeline[-1] not in shown:
            shown.append(timeline[-1])
        for row in shown:
            t.add(
                row.get("round", "?"), row.get("placed", ""), row.get("swapped", ""),
                row.get("unprocessed", ""), row.get("max_balance_factor", ""),
            )
        tables.append(t)
    stripe = report.get("stripe_width", {})
    if any(stripe.get(kind) for kind in ("read", "write")):
        t = Table(["io", "width", "count"], title="stripe-width histogram")
        for kind in ("read", "write"):
            for width, count in (stripe.get(kind) or {}).items():
                t.add(kind, width, count)
        tables.append(t)
    return tables


def render_report(report: dict) -> list[Table]:
    """Render a run-report dict (or ``repro report`` summary) as tables."""
    tables = []
    result = report.get("result", {})
    if result:
        t = Table(["metric", "value"], title=f"run report · {report.get('command', '')}")
        for key, val in result.items():
            t.add(key, val)
        tables.append(t)
    tables.extend(_phase_tables(report))
    return tables
