"""Metrics registry: counters, gauges, bucketed histograms, child scopes.

Names are dotted strings (``"io.read_ios"``); scopes nest
(``registry.scope("pdm").counter("io.read_ios")`` exports under
``{"pdm": {"counters": {"io.read_ios": ...}}}``).  Everything is plain
Python — no clock, no I/O — so instruments stay cheap enough to leave in
hot simulator paths behind a single ``is not None`` guard.

Design notes
------------
* **Get-or-create**: ``counter/gauge/histogram/scope`` return the existing
  instrument when the name is already registered (type mismatches raise).
* **Histograms** default to *exact* integer-valued counting (a dict of
  value → count) because the distributions the paper cares about — I/O
  stripe widths (≤ D), per-round swap counts (≤ H'), matching iterations —
  are tiny discrete ranges; pass explicit ``buckets`` for genuinely
  continuous data.
* **Export** is a nested plain dict, JSON-ready, stable key order.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be ≥ 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def export(self):
        """The counter's current value (a plain int)."""
        return self.value

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value instrument that also tracks its min/max watermarks."""

    __slots__ = ("name", "value", "min", "max", "_touched")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = 0.0
        self.max = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        """Record the latest value and update the min/max watermarks."""
        value = float(value)
        if not self._touched:
            self.min = self.max = value
            self._touched = True
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.value = value

    def set_bulk(self, values) -> None:
        """Equivalent to calling :meth:`set` on each value in order.

        Bulk form for deferred replay from columnar event buffers: the
        resulting value/min/max (and ``_touched``) are bit-identical to
        the sequential calls — ``value`` ends at the last element, the
        watermarks widen by the slice's min/max.
        """
        if not values:
            return
        lo = float(min(values))
        hi = float(max(values))
        if not self._touched:
            self.min = lo
            self.max = hi
            self._touched = True
        else:
            if lo < self.min:
                self.min = lo
            if hi > self.max:
                self.max = hi
        self.value = float(values[-1])

    def export(self) -> dict:
        """The last value plus its min/max watermarks."""
        return {"value": self.value, "min": self.min, "max": self.max}

    def reset(self) -> None:
        """Zero the gauge and its watermarks."""
        self.value = self.min = self.max = 0.0
        self._touched = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution instrument: exact discrete counts or bucketed.

    With ``buckets=None`` (default) every observed value keeps its own
    count — right for the small discrete distributions the simulators
    produce (stripe widths, swap counts).  With explicit ``buckets`` (a
    sorted sequence of upper bounds) values are cumulative-bucketed like a
    Prometheus histogram, with a final ``+Inf`` bucket implied.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] | None = None):
        self.name = name
        self.buckets = sorted(float(b) for b in buckets) if buckets else None
        if self.buckets is not None:
            self.counts = [0] * (len(self.buckets) + 1)
        else:
            self.counts = {}
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` (``n`` times, for pre-aggregated observations)."""
        if n <= 0:
            return
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.buckets is None:
            if type(value) is int:  # hot path: discrete counts (stripe widths)
                key = value
            else:
                key = int(value) if float(value).is_integer() else float(value)
            self.counts[key] = self.counts.get(key, 0) + n
        else:
            self.counts[bisect.bisect_left(self.buckets, value)] += n

    def observe_bulk(self, values) -> None:
        """Equivalent to observing each **int** value in order (exact mode).

        Bulk form for deferred replay from columnar event buffers —
        restricted to exact (non-bucketed) histograms fed plain ints,
        which is what the hot simulator paths record (stripe widths,
        per-round swap counts).  Bit-identical to the loop: integer sums
        below 2**53 accumulate exactly in a float either way, min/max are
        order-free, and the per-value counts add up the same (the counts
        dict gains new keys in first-seen order, exactly as the loop
        would).
        """
        if not values:
            return
        if self.buckets is not None:
            raise TypeError(
                f"histogram {self.name!r}: observe_bulk requires exact "
                f"(non-bucketed) mode"
            )
        n = len(values)
        self.count += n
        total = 0
        for v in values:
            total += v
        self.sum += total
        lo = min(values)
        hi = max(values)
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi
        counts = self.counts
        if n > 8:
            from collections import Counter

            for key, c in Counter(values).items():
                counts[key] = counts.get(key, 0) + c
        else:
            for key in values:
                counts[key] = counts.get(key, 0) + 1

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def export(self) -> dict:
        """Count/sum/mean/min/max plus the distribution dict."""
        if self.buckets is None:
            dist = {str(k): v for k, v in sorted(self.counts.items(), key=lambda kv: float(kv[0]))}
        else:
            labels = [f"le={b:g}" for b in self.buckets] + ["le=+Inf"]
            dist = dict(zip(labels, self.counts))
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "dist": dist,
        }

    def reset(self) -> None:
        """Forget every observation (bucket bounds are kept)."""
        if self.buckets is None:
            self.counts = {}
        else:
            self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """A named tree of instruments.

    Scopes nest arbitrarily (``registry.scope("sort").scope("level=1")``);
    each scope holds its own counters/gauges/histograms.  ``export()``
    returns the whole subtree as a nested plain dict.
    """

    def __init__(self, name: str = "root"):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._scopes: dict[str, MetricsRegistry] = {}
        # Deferred metric sources (columnar fast path): callables that
        # replay any not-yet-applied observations into this scope's
        # instruments.  Flushed before anything reads the scope — the
        # instrument accessors, export/walk/reset/merge — so deferral is
        # unobservable outside the hot loop itself.
        self._pending: list = []
        self._flushing = False

    # ----------------------------------------------------- deferred sources

    def add_pending_flush(self, flush) -> None:
        """Register ``flush()`` to run before this scope is read or reset.

        The columnar observation path batches per-event instrument
        updates: hot emitters append scalars to event columns only, and
        ``flush`` replays the new rows into the instruments (keeping its
        own cursor, so repeated flushes are idempotent).  Flushes run in
        registration order, which is chronological for sequentially
        attached emitters — exports are bit-identical to the eager path.
        """
        self._pending.append(flush)

    def _flush_pending(self) -> None:
        if not self._pending or self._flushing:
            return
        self._flushing = True
        try:
            for flush in self._pending:
                flush()
        finally:
            self._flushing = False

    # --------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name`` in this scope."""
        self._flush_pending()
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name, self._counters)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name`` in this scope."""
        self._flush_pending()
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name, self._gauges)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        """Get or create the histogram ``name`` (``buckets`` only on create)."""
        self._flush_pending()
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name, self._histograms)
            inst = self._histograms[name] = Histogram(name, buckets)
        return inst

    def scope(self, name: str) -> "MetricsRegistry":
        """Get or create the child scope ``name``.

        Dotted names nest: ``scope("pdm.cpu")`` is ``scope("pdm").scope("cpu")``,
        so resetting ``"pdm"`` also resets the machine's CPU sub-scope.
        """
        if "." in name:
            head, rest = name.split(".", 1)
            return self.scope(head).scope(rest)
        child = self._scopes.get(name)
        if child is None:
            child = self._scopes[name] = MetricsRegistry(name)
        return child

    def _check_free(self, name: str, owner: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise TypeError(
                    f"metric {name!r} already registered with a different type"
                )

    # ------------------------------------------------------------- export

    def export(self) -> dict:
        """The subtree as a nested, JSON-ready dict (stable key order)."""
        self._flush_pending()
        out: dict = {}
        if self._counters:
            out["counters"] = {
                k: v.export() for k, v in sorted(self._counters.items())
            }
        if self._gauges:
            out["gauges"] = {k: v.export() for k, v in sorted(self._gauges.items())}
        if self._histograms:
            out["histograms"] = {
                k: v.export() for k, v in sorted(self._histograms.items())
            }
        for k in sorted(self._scopes):
            sub = self._scopes[k].export()
            if sub:  # skip scopes with no instruments anywhere beneath
                out[k] = sub
        return out

    def merge_export(self, exported: dict) -> None:
        """Fold a previously exported registry dict back into this registry.

        The inverse of :meth:`export`, used by the parallel runner
        (:mod:`repro.exec`) to combine per-worker registries into one:
        counters add, gauges keep the last value while widening their
        min/max watermarks, histograms re-accumulate their distributions
        (exact histograms replay every value; bucketed histograms add
        their bucket counts, which requires identical bucket bounds).
        Scopes merge recursively; merging is associative, so worker order
        only affects gauge *values* (never counters or histograms).
        """
        self._flush_pending()
        for key, val in exported.items():
            if key == "counters":
                for name, v in val.items():
                    self.counter(name).inc(int(v))
            elif key == "gauges":
                for name, g in val.items():
                    inst = self.gauge(name)
                    # set() min/max/value in turn: widens the watermarks
                    # and leaves `value` at the incoming last-value.
                    inst.set(g["min"])
                    inst.set(g["max"])
                    inst.set(g["value"])
            elif key == "histograms":
                for name, h in val.items():
                    self._merge_histogram(name, h)
            else:
                self.scope(key).merge_export(val)

    def _merge_histogram(self, name: str, data: dict) -> None:
        dist = data.get("dist", {})
        labels = list(dist)
        if labels and labels[0].startswith("le="):
            bounds = [float(l[3:]) for l in labels if l != "le=+Inf"]
            inst = self.histogram(name, buckets=bounds)
            if inst.buckets != sorted(bounds):
                raise TypeError(
                    f"histogram {name!r}: cannot merge mismatched buckets "
                    f"{bounds} into {inst.buckets}"
                )
            for i, label in enumerate(labels):
                inst.counts[i] += int(dist[label])
            inst.count += int(data.get("count", 0))
            inst.sum += float(data.get("sum", 0.0))
            for attr, better in (("min", min), ("max", max)):
                incoming = data.get(attr)
                if incoming is not None:
                    current = getattr(inst, attr)
                    setattr(
                        inst, attr,
                        incoming if current is None else better(current, incoming),
                    )
        else:
            inst = self.histogram(name)
            for key, n in dist.items():
                value = float(key)
                inst.observe(int(value) if value.is_integer() else value, int(n))

    def reset(self) -> None:
        """Zero every instrument in this scope and all child scopes.

        Deferred sources flush first (their cursors advance), so events
        recorded before the reset are absorbed and zeroed with everything
        else while later events still land — exactly the eager timeline.
        """
        self._flush_pending()
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst.reset()
        for child in self._scopes.values():
            child.reset()

    def walk(self) -> Iterable[tuple[str, object]]:
        """Yield ``(dotted_path, instrument)`` pairs over the whole subtree."""
        self._flush_pending()
        for group in (self._counters, self._gauges, self._histograms):
            for name, inst in sorted(group.items()):
                yield name, inst
        for sname in sorted(self._scopes):
            for path, inst in self._scopes[sname].walk():
                yield f"{sname}.{path}", inst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = sum(1 for _ in self.walk())
        return f"MetricsRegistry({self.name!r}, instruments={n})"
