"""Metrics registry: counters, gauges, bucketed histograms, child scopes.

Names are dotted strings (``"io.read_ios"``); scopes nest
(``registry.scope("pdm").counter("io.read_ios")`` exports under
``{"pdm": {"counters": {"io.read_ios": ...}}}``).  Everything is plain
Python — no clock, no I/O — so instruments stay cheap enough to leave in
hot simulator paths behind a single ``is not None`` guard.

Design notes
------------
* **Get-or-create**: ``counter/gauge/histogram/scope`` return the existing
  instrument when the name is already registered (type mismatches raise).
* **Histograms** default to *exact* integer-valued counting (a dict of
  value → count) because the distributions the paper cares about — I/O
  stripe widths (≤ D), per-round swap counts (≤ H'), matching iterations —
  are tiny discrete ranges; pass explicit ``buckets`` for genuinely
  continuous data.
* **Export** is a nested plain dict, JSON-ready, stable key order.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be ≥ 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def export(self):
        """The counter's current value (a plain int)."""
        return self.value

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value instrument that also tracks its min/max watermarks."""

    __slots__ = ("name", "value", "min", "max", "_touched")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = 0.0
        self.max = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        """Record the latest value and update the min/max watermarks."""
        value = float(value)
        if not self._touched:
            self.min = self.max = value
            self._touched = True
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.value = value

    def export(self) -> dict:
        """The last value plus its min/max watermarks."""
        return {"value": self.value, "min": self.min, "max": self.max}

    def reset(self) -> None:
        """Zero the gauge and its watermarks."""
        self.value = self.min = self.max = 0.0
        self._touched = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution instrument: exact discrete counts or bucketed.

    With ``buckets=None`` (default) every observed value keeps its own
    count — right for the small discrete distributions the simulators
    produce (stripe widths, swap counts).  With explicit ``buckets`` (a
    sorted sequence of upper bounds) values are cumulative-bucketed like a
    Prometheus histogram, with a final ``+Inf`` bucket implied.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] | None = None):
        self.name = name
        self.buckets = sorted(float(b) for b in buckets) if buckets else None
        if self.buckets is not None:
            self.counts = [0] * (len(self.buckets) + 1)
        else:
            self.counts = {}
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` (``n`` times, for pre-aggregated observations)."""
        if n <= 0:
            return
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.buckets is None:
            if type(value) is int:  # hot path: discrete counts (stripe widths)
                key = value
            else:
                key = int(value) if float(value).is_integer() else float(value)
            self.counts[key] = self.counts.get(key, 0) + n
        else:
            self.counts[bisect.bisect_left(self.buckets, value)] += n

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def export(self) -> dict:
        """Count/sum/mean/min/max plus the distribution dict."""
        if self.buckets is None:
            dist = {str(k): v for k, v in sorted(self.counts.items(), key=lambda kv: float(kv[0]))}
        else:
            labels = [f"le={b:g}" for b in self.buckets] + ["le=+Inf"]
            dist = dict(zip(labels, self.counts))
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "dist": dist,
        }

    def reset(self) -> None:
        """Forget every observation (bucket bounds are kept)."""
        if self.buckets is None:
            self.counts = {}
        else:
            self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """A named tree of instruments.

    Scopes nest arbitrarily (``registry.scope("sort").scope("level=1")``);
    each scope holds its own counters/gauges/histograms.  ``export()``
    returns the whole subtree as a nested plain dict.
    """

    def __init__(self, name: str = "root"):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._scopes: dict[str, MetricsRegistry] = {}

    # --------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name`` in this scope."""
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name, self._counters)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name`` in this scope."""
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name, self._gauges)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        """Get or create the histogram ``name`` (``buckets`` only on create)."""
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name, self._histograms)
            inst = self._histograms[name] = Histogram(name, buckets)
        return inst

    def scope(self, name: str) -> "MetricsRegistry":
        """Get or create the child scope ``name``.

        Dotted names nest: ``scope("pdm.cpu")`` is ``scope("pdm").scope("cpu")``,
        so resetting ``"pdm"`` also resets the machine's CPU sub-scope.
        """
        if "." in name:
            head, rest = name.split(".", 1)
            return self.scope(head).scope(rest)
        child = self._scopes.get(name)
        if child is None:
            child = self._scopes[name] = MetricsRegistry(name)
        return child

    def _check_free(self, name: str, owner: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise TypeError(
                    f"metric {name!r} already registered with a different type"
                )

    # ------------------------------------------------------------- export

    def export(self) -> dict:
        """The subtree as a nested, JSON-ready dict (stable key order)."""
        out: dict = {}
        if self._counters:
            out["counters"] = {
                k: v.export() for k, v in sorted(self._counters.items())
            }
        if self._gauges:
            out["gauges"] = {k: v.export() for k, v in sorted(self._gauges.items())}
        if self._histograms:
            out["histograms"] = {
                k: v.export() for k, v in sorted(self._histograms.items())
            }
        for k in sorted(self._scopes):
            sub = self._scopes[k].export()
            if sub:  # skip scopes with no instruments anywhere beneath
                out[k] = sub
        return out

    def merge_export(self, exported: dict) -> None:
        """Fold a previously exported registry dict back into this registry.

        The inverse of :meth:`export`, used by the parallel runner
        (:mod:`repro.exec`) to combine per-worker registries into one:
        counters add, gauges keep the last value while widening their
        min/max watermarks, histograms re-accumulate their distributions
        (exact histograms replay every value; bucketed histograms add
        their bucket counts, which requires identical bucket bounds).
        Scopes merge recursively; merging is associative, so worker order
        only affects gauge *values* (never counters or histograms).
        """
        for key, val in exported.items():
            if key == "counters":
                for name, v in val.items():
                    self.counter(name).inc(int(v))
            elif key == "gauges":
                for name, g in val.items():
                    inst = self.gauge(name)
                    # set() min/max/value in turn: widens the watermarks
                    # and leaves `value` at the incoming last-value.
                    inst.set(g["min"])
                    inst.set(g["max"])
                    inst.set(g["value"])
            elif key == "histograms":
                for name, h in val.items():
                    self._merge_histogram(name, h)
            else:
                self.scope(key).merge_export(val)

    def _merge_histogram(self, name: str, data: dict) -> None:
        dist = data.get("dist", {})
        labels = list(dist)
        if labels and labels[0].startswith("le="):
            bounds = [float(l[3:]) for l in labels if l != "le=+Inf"]
            inst = self.histogram(name, buckets=bounds)
            if inst.buckets != sorted(bounds):
                raise TypeError(
                    f"histogram {name!r}: cannot merge mismatched buckets "
                    f"{bounds} into {inst.buckets}"
                )
            for i, label in enumerate(labels):
                inst.counts[i] += int(dist[label])
            inst.count += int(data.get("count", 0))
            inst.sum += float(data.get("sum", 0.0))
            for attr, better in (("min", min), ("max", max)):
                incoming = data.get(attr)
                if incoming is not None:
                    current = getattr(inst, attr)
                    setattr(
                        inst, attr,
                        incoming if current is None else better(current, incoming),
                    )
        else:
            inst = self.histogram(name)
            for key, n in dist.items():
                value = float(key)
                inst.observe(int(value) if value.is_integer() else value, int(n))

    def reset(self) -> None:
        """Zero every instrument in this scope and all child scopes."""
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst.reset()
        for child in self._scopes.values():
            child.reset()

    def walk(self) -> Iterable[tuple[str, object]]:
        """Yield ``(dotted_path, instrument)`` pairs over the whole subtree."""
        for group in (self._counters, self._gauges, self._histograms):
            for name, inst in sorted(group.items()):
                yield name, inst
        for sname in sorted(self._scopes):
            for path, inst in self._scopes[sname].walk():
                yield f"{sname}.{path}", inst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = sum(1 for _ in self.walk())
        return f"MetricsRegistry({self.name!r}, instruments={n})"
