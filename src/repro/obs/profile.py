"""Trace-driven profiling: where did the wall-clock actually go?

PR 3 ended with a measurement it could not explain: after the arena store
landed, the E1 grid's remaining 12.2 s was "spread over ~77k parallel-I/O
round trips with no dominant hotspot".  This module answers that question
from the traces the simulators already emit — no re-instrumentation, no
re-running.

:func:`profile_trace` rebuilds the span tree from a JSONL trace (plain or
gzipped, or an in-memory event list) and computes:

* **hotspots** — per span name: inclusive wall, *self* time (wall minus
  direct children), call count, attached I/O-round count, and µs per
  round.  Self times are exact complements by construction — summed over
  all names they equal the root spans' total wall to float rounding —
  so the hotspot table accounts for 100% of the measured time (the
  acceptance bar is 1%; the residual here is `round(…, 6)` noise on the
  emitted ``wall_s`` values).
* **critical path** — the longest root-to-leaf chain by inclusive wall
  (for these serial simulators: the recursion spine the run spent its
  time under).
* **levels** — wall/self/I/O-rounds per recursion level (spans carry a
  ``level`` attribute), i.e. where in the recursion the rounds happen.
* **io** — round-trip totals, width histograms, and a utilization
  timeline: the trace's time axis cut into ``bins`` equal slices with
  per-slice round counts and mean stripe width (mean width / machine
  width = duty cycle of the disk array).
* **truncated spans** — begins without ends (crashed or interrupted
  runs) are closed *virtually* at the last timestamp in the trace, so a
  partial trace still profiles instead of raising; the count is
  reported.

Schema: ``repro.profile/1`` (additive evolution, like the run report).
"""

from __future__ import annotations

from typing import Iterable

from .tracer import read_trace

__all__ = ["profile_trace", "render_profile", "PROFILE_SCHEMA"]

PROFILE_SCHEMA = "repro.profile/1"

#: Point events counted as one I/O round trip each: a PDM parallel I/O
#: (``io.read`` / ``io.write``) or a hierarchy parallel memory step.
_ROUND_EVENTS = ("io.read", "io.write", "mem.step")


def profile_trace(
    events_or_path: str | Iterable[dict],
    top: int | None = None,
    bins: int = 20,
    memory: dict | None = None,
) -> dict:
    """Profile a trace into hotspots, critical path, levels, and I/O stats.

    ``top`` truncates the hotspot table (None = all names); ``bins`` sets
    the utilization-timeline resolution.  Accepts a path (plain or
    gzipped JSONL; torn tails tolerated) or an iterable of event dicts.
    ``memory`` attaches a memory-telemetry snapshot (e.g. from
    :class:`~repro.obs.memory.MemoryTelemetry` or the runner's merged
    ``stats["memory"]``) under the profile's ``memory`` key.
    """
    if isinstance(events_or_path, str):
        events = read_trace(events_or_path, tolerate_truncated_tail=True)
    else:
        events = list(events_or_path)

    spans: dict[int, dict] = {}
    order: list[int] = []
    max_ts = 0.0
    point_events = []
    for ev in events:
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            max_ts = max(max_ts, float(ts))
        kind = ev.get("ev")
        sid = ev.get("span")
        if kind == "begin":
            spans[sid] = {
                "id": sid, "name": ev.get("name", "?"),
                "parent": ev.get("parent"), "t0": float(ev.get("ts", 0.0)),
                "wall": None, "children_wall": 0.0, "rounds": 0,
                "attrs": ev.get("attrs", {}) or {},
            }
            order.append(sid)
        elif kind == "end":
            node = spans.get(sid)
            if node is None:  # end without begin (merged/partial trace)
                node = spans[sid] = {
                    "id": sid, "name": ev.get("name", "?"),
                    "parent": ev.get("parent"),
                    "t0": float(ev.get("ts", 0.0)) - float(ev.get("wall_s", 0.0)),
                    "wall": None, "children_wall": 0.0, "rounds": 0,
                    "attrs": {},
                }
                order.append(sid)
            node["wall"] = float(ev.get("wall_s", 0.0))
            node["attrs"].update(ev.get("attrs", {}) or {})
        elif kind == "event":
            point_events.append(ev)

    # Close truncated spans virtually at the last observed timestamp.
    truncated = 0
    for sid in order:
        node = spans[sid]
        if node["wall"] is None:
            node["wall"] = round(max(0.0, max_ts - node["t0"]), 6)
            node["truncated"] = True
            truncated += 1

    # Children inclusive-wall sums (for self time) and child lists (for
    # the critical path).
    children: dict[int, list[int]] = {}
    for sid in order:
        node = spans[sid]
        parent = node["parent"]
        if parent in spans:
            spans[parent]["children_wall"] += node["wall"]
            children.setdefault(parent, []).append(sid)

    # Attribute round-trip point events to their owning span.
    round_total = {"io.read": 0, "io.write": 0, "mem.step": 0}
    timeline_events = []
    for ev in point_events:
        name = ev.get("name")
        if name not in _ROUND_EVENTS:
            continue
        round_total[name] += 1
        node = spans.get(ev.get("span"))
        if node is not None:
            node["rounds"] += 1
        timeline_events.append(ev)

    # ------------------------------------------------------------ hotspots
    by_name: dict[str, dict] = {}
    name_order: list[str] = []
    roots_wall = 0.0
    for sid in order:
        node = spans[sid]
        if node["parent"] not in spans:
            roots_wall += node["wall"]
        agg = by_name.get(node["name"])
        if agg is None:
            agg = by_name[node["name"]] = {
                "name": node["name"], "count": 0, "wall_s": 0.0,
                "self_s": 0.0, "rounds": 0,
            }
            name_order.append(node["name"])
        agg["count"] += 1
        agg["wall_s"] += node["wall"]
        agg["self_s"] += node["wall"] - node["children_wall"]
        agg["rounds"] += node["rounds"]
    total_wall = roots_wall
    hotspots = []
    for name in name_order:
        agg = by_name[name]
        hotspots.append({
            "name": agg["name"],
            "count": agg["count"],
            "wall_s": round(agg["wall_s"], 6),
            "self_s": round(agg["self_s"], 6),
            "self_pct": round(100.0 * agg["self_s"] / total_wall, 2)
            if total_wall else 0.0,
            "rounds": agg["rounds"],
            "us_per_round": round(1e6 * agg["self_s"] / agg["rounds"], 2)
            if agg["rounds"] else None,
        })
    hotspots.sort(key=lambda h: h["self_s"], reverse=True)
    shown = hotspots if top is None else hotspots[:top]

    # -------------------------------------------------------- critical path
    critical = []
    roots = [sid for sid in order if spans[sid]["parent"] not in spans]
    if roots:
        sid = max(roots, key=lambda s: spans[s]["wall"])
        depth = 0
        while sid is not None:
            node = spans[sid]
            critical.append({
                "depth": depth,
                "name": node["name"],
                "wall_s": round(node["wall"], 6),
                "self_s": round(node["wall"] - node["children_wall"], 6),
                "rounds": node["rounds"],
            })
            kids = children.get(sid)
            sid = max(kids, key=lambda s: spans[s]["wall"]) if kids else None
            depth += 1

    # --------------------------------------------------------- level table
    levels: dict[int, dict] = {}
    for sid in order:
        node = spans[sid]
        level = node["attrs"].get("level")
        if not isinstance(level, int):
            continue
        agg = levels.setdefault(level, {
            "level": level, "spans": 0, "wall_s": 0.0, "self_s": 0.0, "rounds": 0,
        })
        agg["spans"] += 1
        agg["wall_s"] += node["wall"]
        agg["self_s"] += node["wall"] - node["children_wall"]
        agg["rounds"] += node["rounds"]
    level_rows = [
        {**levels[k],
         "wall_s": round(levels[k]["wall_s"], 6),
         "self_s": round(levels[k]["self_s"], 6)}
        for k in sorted(levels)
    ]

    # ---------------------------------------------- utilization timeline
    widths: dict[str, dict[int, int]] = {"read": {}, "write": {}}
    for ev in timeline_events:
        attrs = ev.get("attrs", {}) or {}
        width = attrs.get("width")
        if width is None:
            continue
        kind = attrs.get("kind") if ev["name"] == "mem.step" else (
            "read" if ev["name"] == "io.read" else "write")
        if kind in widths:
            widths[kind][int(width)] = widths[kind].get(int(width), 0) + 1
    timeline = []
    if timeline_events and max_ts > 0:
        step = max_ts / bins
        slots = [
            {"t0": round(i * step, 6), "rounds": 0, "width_sum": 0}
            for i in range(bins)
        ]
        for ev in timeline_events:
            ts = float(ev.get("ts", 0.0))
            i = min(bins - 1, int(ts / step)) if step else 0
            slots[i]["rounds"] += 1
            slots[i]["width_sum"] += int((ev.get("attrs") or {}).get("width", 0))
        for slot in slots:
            rounds = slot.pop("rounds")
            width_sum = slot.pop("width_sum")
            slot["rounds"] = rounds
            slot["mean_width"] = round(width_sum / rounds, 2) if rounds else 0.0
        timeline = slots

    total_rounds = sum(round_total.values())
    memory_block = None
    if memory:
        memory_block = {k: v for k, v in memory.items() if v}
    return {
        "schema": PROFILE_SCHEMA,
        "total_wall_s": round(total_wall, 6),
        "n_spans": len(order),
        "n_events": len(events),
        "truncated_spans": truncated,
        "hotspots": shown,
        "hotspots_total_self_s": round(sum(h["self_s"] for h in hotspots), 6),
        "critical_path": critical,
        "levels": level_rows,
        "io": {
            "rounds": {**round_total, "total": total_rounds},
            "us_per_round": round(1e6 * total_wall / total_rounds, 2)
            if total_rounds else None,
            "stripe_width": {
                kind: {str(k): v for k, v in sorted(h.items())}
                for kind, h in widths.items()
            },
            "timeline": timeline,
        },
        **({"memory": memory_block} if memory_block else {}),
    }


def render_profile(profile: dict):
    """Human rendering of a :func:`profile_trace` dict (aligned tables)."""
    from ..analysis.reporting import Table

    tables = []
    total = profile.get("total_wall_s", 0.0)
    io = profile.get("io", {})
    rounds = io.get("rounds", {})
    t = Table(["metric", "value"], title="profile summary")
    t.add("total wall s", total)
    t.add("spans", profile.get("n_spans", 0))
    t.add("trace events", profile.get("n_events", 0))
    if profile.get("truncated_spans"):
        t.add("truncated spans", profile["truncated_spans"])
    t.add("I/O round trips", rounds.get("total", 0))
    if io.get("us_per_round") is not None:
        t.add("µs per round trip", io["us_per_round"])
    tables.append(t)

    hotspots = profile.get("hotspots", [])
    if hotspots:
        t = Table(
            ["span", "count", "wall s", "self s", "self %", "I/O rounds",
             "self µs/round"],
            title="hotspots (by self time)",
        )
        for h in hotspots:
            t.add(
                h["name"], h["count"], h["wall_s"], h["self_s"],
                h["self_pct"], h["rounds"],
                "-" if h["us_per_round"] is None else h["us_per_round"],
            )
        tables.append(t)

    critical = profile.get("critical_path", [])
    if critical:
        t = Table(["depth", "span", "wall s", "self s", "I/O rounds"],
                  title="critical path (longest chain)")
        for row in critical:
            t.add(row["depth"], row["name"], row["wall_s"], row["self_s"],
                  row["rounds"])
        tables.append(t)

    levels = profile.get("levels", [])
    if levels:
        t = Table(["level", "spans", "wall s", "self s", "I/O rounds"],
                  title="recursion levels")
        for row in levels:
            t.add(row["level"], row["spans"], row["wall_s"], row["self_s"],
                  row["rounds"])
        tables.append(t)

    timeline = io.get("timeline", [])
    if timeline:
        t = Table(["t0 s", "I/O rounds", "mean width (blocks)"],
                  title=f"I/O utilization timeline ({len(timeline)} bins)")
        for slot in timeline:
            t.add(slot["t0"], slot["rounds"], slot["mean_width"])
        tables.append(t)

    memory = profile.get("memory")
    if memory:
        t = Table(["metric", "value"], title="memory telemetry")
        for key, label in (
            ("high_water_blocks", "arena high-water blocks"),
            ("resident_blocks", "resident blocks"),
            ("slab_rows", "slab rows"),
            ("slab_bytes", "slab bytes"),
            ("grow_events", "slab grow events"),
            ("ledger_high_water_records", "ledger high-water records"),
            ("peak_rss_kb", "peak RSS kB"),
        ):
            if memory.get(key):
                t.add(label, memory[key])
        for sample in memory.get("phase_rss") or []:
            t.add(f"RSS after {sample.get('phase')} (kB)", sample.get("rss_kb"))
        tables.append(t)
    return tables
