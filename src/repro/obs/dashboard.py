"""`repro dashboard`: a self-contained static HTML view of the history.

Renders one HTML file — inline CSS, inline SVG, zero external requests,
no JavaScript required — from a :class:`~repro.obs.history.RunHistory`
index, so the nightly CI artifact is a single file anyone can open from
a mail attachment or an artifact download:

* **perf trajectory** per ledger series × host class (seconds over
  points, latest value and commit annotated);
* **constant-factor ratios** over time (the measured-vs-Theorem-1 ratio
  each run report carries — the paper's "small constant factor" claim
  as a trend line);
* **phase breakdown** stacked bars for the most recent profiled runs;
* **memory high-water trend** (arena high-water blocks and peak RSS
  from ingested sweep stats / profiles);
* **service health** (admission/shed/quota/drain counters from ingested
  ``repro serve --stats-json`` dumps — the CI smoke and nightly chaos
  drill each record one);
* the **league-table placeholder** the ROADMAP's cross-algorithm era
  (Guidesort / Histogram Sort with Sampling) will fill in.

Everything is hand-drawn SVG: polylines on a fixed-size viewBox with
min/max labels — honest sparklines, not a charting framework.
"""

from __future__ import annotations

import html
import time

from .. import __version__
from .history import RunHistory

__all__ = ["render_dashboard"]

#: Categorical palette (colorblind-friendly, dark-on-light).
_COLORS = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759",
    "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
)

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.5 system-ui, -apple-system, 'Segoe UI', sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a24; background: #fcfcfd; }
h1 { font-size: 1.5rem; margin-bottom: .25rem; }
h2 { font-size: 1.1rem; margin: 2rem 0 .5rem; border-bottom: 1px solid #e3e3ea;
     padding-bottom: .25rem; }
.meta { color: #6b6b76; font-size: .85rem; }
.grid { display: flex; flex-wrap: wrap; gap: 1rem; }
.card { border: 1px solid #e3e3ea; border-radius: 8px; padding: .75rem 1rem;
        background: #fff; flex: 1 1 20rem; }
.card h3 { margin: 0 0 .25rem; font-size: .95rem; }
.card .sub { color: #6b6b76; font-size: .8rem; margin-bottom: .5rem; }
table { border-collapse: collapse; font-size: .85rem; width: 100%; }
th, td { text-align: left; padding: .2rem .6rem .2rem 0; }
th { color: #6b6b76; font-weight: 600; border-bottom: 1px solid #e3e3ea; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.placeholder { color: #6b6b76; font-style: italic; }
svg text { font: 10px system-ui, sans-serif; fill: #6b6b76; }
.legend span { display: inline-block; margin-right: .8rem; font-size: .8rem; }
.legend i { display: inline-block; width: .7rem; height: .7rem;
            border-radius: 2px; margin-right: .3rem; vertical-align: -1px; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _fmt(value) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _polyline_chart(
    series: list[tuple[str, list[float]]],
    width: int = 420,
    height: int = 120,
    unit: str = "",
) -> str:
    """An inline-SVG line chart: one polyline per named series."""
    values = [v for _, pts in series for v in pts if v is not None]
    if not values:
        return '<p class="placeholder">no data points yet</p>'
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + (abs(lo) or 1.0)
    pad, top = 6, 12
    span_y = height - pad - top

    def y_of(v: float) -> float:
        return top + span_y * (1 - (v - lo) / (hi - lo))

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" xmlns="http://www.w3.org/2000/svg">'
    ]
    parts.append(
        f'<text x="2" y="{top - 2}">{_fmt(round(hi, 4))}{_esc(unit)}</text>'
    )
    parts.append(
        f'<text x="2" y="{height - 1}">{_fmt(round(lo, 4))}{_esc(unit)}</text>'
    )
    for i, (name, pts) in enumerate(series):
        pts = [v for v in pts if v is not None]
        if not pts:
            continue
        color = _COLORS[i % len(_COLORS)]
        n = len(pts)
        xs = (
            [width / 2] if n == 1
            else [46 + (width - 56) * j / (n - 1) for j in range(n)]
        )
        coords = " ".join(
            f"{x:.1f},{y_of(v):.1f}" for x, v in zip(xs, pts)
        )
        if n > 1:
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                f'stroke-width="1.6"><title>{_esc(name)}</title></polyline>'
            )
        for x, v in zip(xs, pts):
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y_of(v):.1f}" r="2.4" '
                f'fill="{color}"><title>{_esc(name)}: {_fmt(v)}{_esc(unit)}'
                f'</title></circle>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _legend(names: list[str]) -> str:
    spans = []
    for i, name in enumerate(names):
        color = _COLORS[i % len(_COLORS)]
        spans.append(
            f'<span><i style="background:{color}"></i>{_esc(name)}</span>'
        )
    return f'<div class="legend">{"".join(spans)}</div>'


def _stacked_bars(runs: list[tuple[str, list[tuple[str, float]]]]):
    """Horizontal stacked bars (SVG string, phase-name legend order)."""
    phase_names: list[str] = []
    for _, phases in runs:
        for name, _ in phases:
            if name not in phase_names:
                phase_names.append(name)
    color_of = {
        n: _COLORS[i % len(_COLORS)] for i, n in enumerate(phase_names)
    }
    width, row_h, gap, label_w = 560, 18, 8, 150
    height = len(runs) * (row_h + gap)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" xmlns="http://www.w3.org/2000/svg">'
    ]
    max_total = max(
        (sum(v for _, v in phases) for _, phases in runs), default=0.0
    ) or 1.0
    for row, (label, phases) in enumerate(runs):
        y = row * (row_h + gap)
        parts.append(
            f'<text x="0" y="{y + row_h - 5}">{_esc(label[:24])}</text>'
        )
        x = float(label_w)
        for name, value in phases:
            w = (width - label_w - 4) * value / max_total
            if w <= 0:
                continue
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{row_h}" '
                f'fill="{color_of[name]}"><title>{_esc(name)}: '
                f'{value:.3f}s</title></rect>'
            )
            x += w
    parts.append("</svg>")
    return "".join(parts), phase_names


def _ledger_sections(records: list[dict]) -> str:
    """Per-series/host perf-trajectory cards from indexed ledger points."""
    groups: dict[tuple[str, str, int], list[dict]] = {}
    for r in records:
        if r.get("kind") != "ledger":
            continue
        summary = r.get("summary") or {}
        key = (
            r.get("series", "?"), r.get("host_key", "?"),
            int(summary.get("min_of", 1) or 1),
        )
        groups.setdefault(key, []).append(r)
    if not groups:
        return (
            '<p class="placeholder">no ledger points indexed — '
            "<code>repro history ingest BENCH_ledger.jsonl</code></p>"
        )
    cards = []
    for (series, hk, min_of), points in sorted(groups.items()):
        points = sorted(points, key=lambda r: r.get("ts", 0))
        seconds = [
            (r.get("summary") or {}).get("seconds") for r in points
        ]
        latest = points[-1]
        latest_summary = latest.get("summary") or {}
        chart = _polyline_chart([(series, seconds)], unit=" s")
        cards.append(
            '<div class="card">'
            f"<h3>{_esc(series)}</h3>"
            f'<div class="sub">host {_esc(hk or "?")} · min-of-{min_of} · '
            f"{len(points)} points · latest "
            f"{_fmt(latest_summary.get('seconds'))} s @ "
            f"{_esc(latest.get('commit') or '?')}</div>"
            f"{chart}</div>"
        )
    return f'<div class="grid">{"".join(cards)}</div>'


def _ratio_section(records: list[dict]) -> str:
    """Constant-factor ratios (measured / Theorem-1 bound) over runs."""
    ratios = []
    for r in records:
        if r.get("kind") != "report":
            continue
        ratio = (r.get("summary") or {}).get("ratio")
        if ratio is not None:
            ratios.append((r.get("commit") or r["id"], float(ratio)))
    if not ratios:
        return (
            '<p class="placeholder">no run reports with a Theorem-1 ratio '
            "indexed yet</p>"
        )
    chart = _polyline_chart(
        [("measured / bound", [v for _, v in ratios])], unit="×"
    )
    rows = "".join(
        f"<tr><td>{_esc(label)}</td>"
        f'<td class="num">{v:.3f}</td></tr>'
        for label, v in ratios[-8:]
    )
    return (
        f"{chart}<table><tr><th>run</th>"
        f'<th class="num">parallel I/Os vs Theorem 1</th></tr>{rows}</table>'
    )


def _phase_section(history: RunHistory, records: list[dict]) -> str:
    """Stacked phase-breakdown bars for the newest profiled/reported runs."""
    runs = []
    for r in records:
        if r.get("kind") == "profile":
            doc = history.load_artifact(r)
            phases = [
                (h.get("name", "?"), float(h.get("self_s") or 0.0))
                for h in (doc.get("hotspots") or [])[:8]
            ]
        elif r.get("kind") == "report":
            doc = history.load_artifact(r)
            phases = [
                (p.get("name", "?"), float(p.get("wall_s") or 0.0))
                for p in doc.get("phases") or []
            ]
        else:
            continue
        if phases:
            label = f"{r.get('commit') or r['id'][:14]} ({r['kind']})"
            runs.append((label, phases))
    runs = runs[-6:]
    if not runs:
        return '<p class="placeholder">no profiled runs yet</p>'
    svg, phase_names = _stacked_bars(runs)
    return _legend(phase_names) + svg


def _memory_section(records: list[dict]) -> str:
    """Memory high-water trend from stats/profile summaries."""
    hw, rss = [], []
    for r in records:
        summary = r.get("summary") or {}
        if summary.get("high_water_blocks"):
            hw.append(float(summary["high_water_blocks"]))
        if summary.get("peak_rss_kb"):
            rss.append(float(summary["peak_rss_kb"]) / 1024.0)
    if not hw and not rss:
        return (
            '<p class="placeholder">no memory telemetry indexed — ingest a '
            "sweep <code>--stats-json</code> recorded with "
            "<code>REPRO_MEM_TELEMETRY=1</code> (the default)</p>"
        )
    parts = []
    if hw:
        parts.append("<h3>arena high-water blocks</h3>")
        parts.append(_polyline_chart([("high-water blocks", hw)]))
    if rss:
        parts.append("<h3>peak RSS (MiB)</h3>")
        parts.append(_polyline_chart([("peak RSS", rss)], unit=" MiB"))
    return "".join(parts)


def _serve_section(records: list[dict]) -> str:
    """Service-health cards from ingested ``repro.serve_stats/1`` dumps."""
    serves = [r for r in records if r.get("kind") == "serve"]
    if not serves:
        return (
            '<p class="placeholder">no service runs indexed — ingest a '
            "<code>repro serve --stats-json</code> dump (the CI smoke and "
            "nightly chaos drill record one per drill)</p>"
        )
    rows = []
    for r in serves[-8:]:
        s = r.get("summary") or {}
        rows.append(
            f"<tr><td>{_esc(r.get('commit') or r['id'][:14])}</td>"
            + "".join(
                f'<td class="num">{_fmt(s.get(k))}</td>'
                for k in (
                    "admitted", "coalesced", "cache_hits", "shed",
                    "quota_rejected", "retried", "failed", "drain_seconds",
                    "resumed",
                )
            )
            + "</tr>"
        )
    shed = [float((r.get("summary") or {}).get("shed") or 0) for r in serves]
    retried = [
        float((r.get("summary") or {}).get("retried") or 0) for r in serves
    ]
    chart = _polyline_chart([("shed", shed), ("retried", retried)])
    return (
        _legend(["shed", "retried"]) + chart
        + "<table><tr><th>run</th>"
        + "".join(
            f'<th class="num">{h}</th>'
            for h in (
                "admitted", "coalesced", "cache hits", "shed", "quota rej.",
                "retried", "failed", "drain s", "resumed",
            )
        )
        + f"</tr>{''.join(rows)}</table>"
    )


def render_dashboard(
    history: RunHistory,
    title: str = "repro perf dashboard",
    when: float | None = None,
) -> str:
    """The full dashboard page as one self-contained HTML string."""
    records = history.read()
    stats = history.stats
    kinds = ", ".join(
        f"{count} {kind}" for kind, count in sorted(stats["kinds"].items())
    ) or "empty"
    generated = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(when if when is not None else time.time())
    )
    sections = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="meta">generated {generated} · repro {__version__} · '
        f"index {_esc(stats['root'])} · {stats['records']} records "
        f"({_esc(kinds)})</p>",
        '<h2 id="trajectory">Perf trajectory (ledger series × host)</h2>',
        _ledger_sections(records),
        '<h2 id="ratios">Constant-factor ratios over time</h2>',
        _ratio_section(records),
        '<h2 id="phases">Phase breakdown (latest runs)</h2>',
        _phase_section(history, records),
        '<h2 id="memory">Memory high-water trend</h2>',
        _memory_section(records),
        '<h2 id="service">Service health (sort-as-a-service drills)</h2>',
        _serve_section(records),
        '<h2 id="league">Algorithm league table</h2>',
        '<p class="placeholder">placeholder — the cross-algorithm '
        "constant-factor league table (Balance Sort vs Guidesort vs "
        "Histogram Sort with Sampling) lands with ROADMAP item 2; runs "
        "indexed with distinct task names will populate it from this "
        "same history.</p>",
    ]
    return (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head><body>\n" + "\n".join(sections) + "\n</body></html>\n"
    )
