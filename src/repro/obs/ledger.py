"""The perf-trajectory ledger: an append-only series of bench points.

``BENCH_*.json`` and the ``benchmarks/results/*.json`` sidecars each hold
a *single* measurement — useful as a baseline, blind to direction.  The
ROADMAP asks for the trajectory: a records/sec series over commits so a
regression is visible as a bend in a curve, the way Rahn–Sanders–Singler
report sustained sorting throughput over machine scale.  This module is
that series (schema ``repro.bench_series/1``):

* :class:`BenchLedger` — one JSONL file, append-only, fsynced per line,
  torn-tail forgiving (the same durability contract as the resilience
  journal).  Committed to the repo as ``BENCH_ledger.jsonl``, appended by
  nightly CI and uploaded as an artifact.
* :func:`make_entry` — one ledger point: series name, commit, normalized
  host metadata (:func:`~repro.util.capture_host`), grid fingerprint,
  wall seconds, records/sec, cache counters.
* :func:`compare_entries` — the regression gate: the latest point vs its
  baseline (the previous point of the same ``series`` on the same
  ``host_key``) through :func:`~repro.obs.diff.diff_runs` relative
  thresholds.  Wall-clock comparisons only make sense within a host
  class, so entries are **host-keyed** and cross-grid comparisons are
  refused rather than silently wrong.

Only *increases* regress (``diff_runs`` semantics): a faster run never
fails the gate.  The default window mirrors the repo's CI wall-clock
convention — ``threshold=2.0`` ≡ "measured ≤ 3 × baseline".
"""

from __future__ import annotations

import json
import os
import time

from ..util import capture_host
from .diff import DiffResult, diff_runs

__all__ = ["SERIES_SCHEMA", "BenchLedger", "make_entry", "compare_entries"]

SERIES_SCHEMA = "repro.bench_series/1"

#: Default relative-delta window: seconds may grow ≤ 3× before gating.
DEFAULT_THRESHOLD = 2.0


def make_entry(
    series: str,
    seconds: float,
    records: int,
    grid: str = "",
    cells: int = 0,
    cache: dict | None = None,
    commit: str = "",
    host: dict | None = None,
    notes: str = "",
    when: float | None = None,
    min_of: int = 1,
) -> dict:
    """Build one ``repro.bench_series/1`` ledger point.

    ``host`` defaults to :func:`~repro.util.capture_host`; ``when`` to
    the current UNIX time (pass explicitly for reproducible tests).
    Derived rates (``records_per_sec``, ``us_per_record``) are stored so
    the gate and any plotting consumer read them without recomputing.
    ``min_of`` records the measurement methodology — ``seconds`` is the
    minimum over that many full-grid repetitions (1 = a single pass).
    """
    if host is None:
        host = capture_host()
    seconds = float(seconds)
    records = int(records)
    entry = {
        "schema": SERIES_SCHEMA,
        "series": series,
        "ts": round(time.time() if when is None else when, 3),
        "commit": commit,
        "host_key": host.get("key", ""),
        "host": host,
        "grid": grid,
        "cells": int(cells),
        "records": records,
        "seconds": round(seconds, 4),
        "records_per_sec": (
            round(records / seconds, 1) if seconds > 0 else None
        ),
        "us_per_record": (
            round(seconds * 1e6 / records, 3) if records > 0 else None
        ),
        "min_of": max(1, int(min_of)),
    }
    if cache is not None:
        entry["cache"] = {
            k: cache[k] for k in ("hits", "misses", "stores", "corrupt")
            if k in cache
        }
    if notes:
        entry["notes"] = notes
    return entry


class BenchLedger:
    """Append-only JSONL series of bench points, host-keyed per series."""

    def __init__(self, path: str):
        self.path = path

    # ------------------------------------------------------------- writing

    def append(self, entry: dict) -> dict:
        """Durably append one point (flushed + fsynced, like the journal)."""
        if entry.get("schema") != SERIES_SCHEMA:
            raise ValueError(
                f"not a {SERIES_SCHEMA} entry: schema="
                f"{entry.get('schema')!r} (use make_entry)"
            )
        if not entry.get("series"):
            raise ValueError("ledger entries need a non-empty 'series'")
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, separators=(",", ":")))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        return entry

    # ------------------------------------------------------------- reading

    def read(self) -> list[dict]:
        """All points in append order; a torn final line is forgiven."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, encoding="utf-8") as fh:
            lines = fh.readlines()
        entries = []
        for i, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines):
                    break  # torn tail of an interrupted append
                raise ValueError(
                    f"bad ledger line {i} in {self.path}"
                ) from None
        return entries

    def entries(self, series: str | None = None,
                host_key: str | None = None) -> list[dict]:
        """Points filtered by series and/or host class, append order kept."""
        out = self.read()
        if series is not None:
            out = [e for e in out if e.get("series") == series]
        if host_key is not None:
            out = [e for e in out if e.get("host_key") == host_key]
        return out

    def latest(self, series: str, host_key: str | None = None) -> dict | None:
        """The newest point of a series (optionally within one host class)."""
        matching = self.entries(series, host_key)
        return matching[-1] if matching else None

    def baseline(self, series: str, host_key: str,
                 min_of: int | None = None) -> dict | None:
        """The point the newest one gates against: its predecessor.

        With ``min_of`` given, only points of that methodology count —
        a series that switches from single-pass to min-of-3 starts a
        fresh baseline rather than gating across methodologies (points
        predating the field count as single-pass).
        """
        matching = self.entries(series, host_key)
        if min_of is not None:
            matching = [e for e in matching
                        if e.get("min_of", 1) == min_of]
        return matching[-2] if len(matching) >= 2 else None

    # --------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Point count and per-series tallies (for stderr summaries)."""
        entries = self.read()
        series: dict[str, int] = {}
        for e in entries:
            name = e.get("series", "?")
            series[name] = series.get(name, 0) + 1
        return {"path": self.path, "points": len(entries), "series": series}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BenchLedger({self.path!r})"


#: The numeric surface the gate compares (increases regress).
_GATED_KEYS = ("seconds", "us_per_record")


def compare_entries(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
    rules: list[tuple[str, float]] | None = None,
) -> DiffResult:
    """Gate ``candidate`` against ``baseline`` via relative thresholds.

    Only the perf surface (``seconds``, ``us_per_record``) is compared —
    commit hashes, timestamps, and cache counters legitimately move.
    Refuses to compare across series, host classes, grids, or
    measurement methodologies (``min_of``; points predating the field
    count as single-pass): such a diff is not a regression signal, it
    is a configuration change.
    """
    for field, default in (
        ("series", None), ("host_key", None), ("grid", None), ("min_of", 1),
    ):
        a, b = baseline.get(field, default), candidate.get(field, default)
        if a != b:
            raise ValueError(
                f"cannot gate across {field}: baseline {a!r} vs "
                f"candidate {b!r}"
            )
    doc_a = {k: baseline.get(k) for k in _GATED_KEYS}
    doc_b = {k: candidate.get(k) for k in _GATED_KEYS}
    return diff_runs(doc_a, doc_b, threshold=threshold, rules=rules)
