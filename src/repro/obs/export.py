"""Export repro JSONL traces to Chrome trace-event / Perfetto JSON.

Our traces (``repro sort --trace-out``, merged sweep traces, the golden
corpus) are readable only by our own tooling (``repro report`` /
``repro profile``).  This bridge converts them to the `Chrome trace-event
format`__ so any run opens in standard tools — ``ui.perfetto.dev``,
``chrome://tracing``, Speedscope:

* span ``begin``/``end`` pairs become complete duration events
  (``ph: "X"``, microsecond ``ts``/``dur``), carrying the span's final
  merged attrs (model I/Os, CPU time, level) as ``args``;
* resilience / audit point events (``fault.*``, ``retry.*``,
  ``audit.violation``, ``runner.*``, ``cache.*``) become instants
  (``ph: "i"``), so injected faults line up visually with the spans they
  hit;
* I/O round-trip events (``io.read`` / ``io.write`` / ``mem.step``)
  become sampled cumulative counter tracks (``ph: "C"``), and every
  ``balance.round`` samples its ``max_balance_factor`` — the Invariant 2
  trajectory as a counter lane;
* merged sweep traces keep their per-run structure: each synthetic
  ``run:<task>[i]`` root (see :mod:`repro.exec.merge`) gets its own
  thread track, named via metadata events.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

**Zero-clock traces.**  Payload traces are recorded under the pinned
deterministic clock (every ``ts`` is 0.0), which would collapse the
timeline to a single point.  When a trace carries no usable timestamps
the exporter falls back to *virtual time*: each trace record advances one
microsecond, so nesting, ordering, and round counts stay visible (the
``otherData.clock`` field says which mode produced the file).  Traces
recorded with the real clock (``--trace-out`` on a live run) keep their
wall-clock timeline.
"""

from __future__ import annotations

import json

from .diff import flatten
from .tracer import read_trace

__all__ = ["EXPORT_SCHEMA", "export_chrome_trace", "write_chrome_trace"]

EXPORT_SCHEMA = "repro.chrome_trace/1"

#: Point events rendered as cumulative counter samples, not instants.
_ROUND_EVENTS = ("io.read", "io.write", "mem.step")

#: The process id every exported event carries (one logical process).
_PID = 1


def _uses_virtual_clock(events: list[dict]) -> bool:
    """True when no record carries a positive timestamp (zero-clock trace)."""
    for event in events:
        ts = event.get("ts")
        if isinstance(ts, (int, float)) and ts > 0:
            return False
    return True


def export_chrome_trace(
    events: list[dict],
    metrics: dict | None = None,
    counter_every: int = 64,
    source: str = "",
) -> dict:
    """Convert a list of repro trace records to a Chrome trace-event doc.

    Parameters
    ----------
    events:
        Trace records as loaded by :func:`~repro.obs.read_trace` (plain
        traces, merged sweep traces, and torn-tail partials all work —
        spans left open at EOF are closed at the last timestamp and
        tagged ``args.truncated``).
    metrics:
        Optional ``MetricsRegistry.export()`` dict (e.g. a payload's
        ``metrics``); its flattened numeric leaves are attached as one
        final counter sample per top-level scope.
    counter_every:
        Sampling stride for the cumulative I/O-rounds counter track (a
        sample per individual round event would dwarf the span data).
    source:
        Free-form provenance string recorded in ``otherData``.

    Returns the trace-event *object form*: ``{"traceEvents": [...],
    "displayTimeUnit": "ms", "otherData": {...}}`` — load it directly in
    ui.perfetto.dev.
    """
    virtual = _uses_virtual_clock(events)

    def stamp(event: dict, index: int) -> float:
        """Microsecond timestamp for one record (virtual: 1 record = 1µs)."""
        if virtual:
            return float(index)
        ts = event.get("ts")
        return round(float(ts) * 1e6, 3) if isinstance(ts, (int, float)) else 0.0

    max_ts = 0.0
    for i, event in enumerate(events):
        max_ts = max(max_ts, stamp(event, i))

    out: list[dict] = []
    #: span id -> tid; children inherit, ``run:*`` merge roots get fresh tids.
    tids: dict[int, int] = {}
    thread_names: dict[int, str] = {1: "main"}
    next_tid = 2
    #: span id -> (begin µs, name, tid) for spans still open.
    open_spans: dict[int, tuple[float, str, int]] = {}
    rounds = {name: 0 for name in _ROUND_EVENTS}
    since_sample = 0

    def tid_for(event: dict) -> int:
        nonlocal next_tid
        span_id = event.get("span")
        parent = event.get("parent")
        if span_id in tids:
            return tids[span_id]
        if parent is not None and parent in tids:
            tid = tids[parent]
        elif str(event.get("name", "")).startswith("run:"):
            tid = next_tid
            next_tid += 1
            thread_names[tid] = str(event.get("name"))
        else:
            tid = 1
        if span_id is not None:
            tids[span_id] = tid
        return tid

    def sample_rounds(ts: float) -> None:
        out.append({
            "name": "I/O rounds", "ph": "C", "ts": ts,
            "pid": _PID, "tid": 0, "args": dict(rounds),
        })

    for i, event in enumerate(events):
        kind = event.get("ev")
        ts = stamp(event, i)
        if kind == "begin":
            tid = tid_for(event)
            open_spans[event.get("span")] = (ts, str(event.get("name", "")), tid)
        elif kind == "end":
            tid = tid_for(event)
            span_id = event.get("span")
            begin_ts, _, begin_tid = open_spans.pop(
                span_id, (ts, "", tid)
            )
            args = dict(event.get("attrs") or {})
            if "error" in event:
                args["error"] = event["error"]
            out.append({
                "name": str(event.get("name", "")), "ph": "X",
                "ts": begin_ts, "dur": max(0.0, ts - begin_ts),
                "pid": _PID, "tid": begin_tid, "cat": "span", "args": args,
            })
        elif kind == "event":
            name = str(event.get("name", ""))
            attrs = event.get("attrs") or {}
            if name in rounds:
                rounds[name] += 1
                since_sample += 1
                if since_sample >= counter_every:
                    since_sample = 0
                    sample_rounds(ts)
            elif name == "balance.round":
                factor = attrs.get("max_balance_factor")
                if factor is not None:
                    out.append({
                        "name": "balance factor", "ph": "C", "ts": ts,
                        "pid": _PID, "tid": 0,
                        "args": {"max_balance_factor": factor},
                    })
            else:
                # fault.* / retry.* / audit.violation / runner.* / cache.*
                # and anything future: a thread-scoped instant.
                parent = event.get("span")
                out.append({
                    "name": name, "ph": "i", "ts": ts,
                    "pid": _PID, "tid": tids.get(parent, 1), "s": "t",
                    "cat": "instant", "args": dict(attrs),
                })
    # Close spans the trace never ended (torn tail / killed run).
    for span_id, (begin_ts, name, tid) in sorted(open_spans.items()):
        out.append({
            "name": name, "ph": "X", "ts": begin_ts,
            "dur": max(0.0, max_ts - begin_ts),
            "pid": _PID, "tid": tid, "cat": "span",
            "args": {"truncated": True},
        })
    if any(rounds.values()):
        sample_rounds(max_ts)
    if metrics:
        for scope, subtree in sorted(metrics.items()):
            if not isinstance(subtree, dict):
                continue
            leaves = {
                path: value for path, value in flatten(subtree).items()
                if isinstance(value, (int, float))
            }
            if leaves:
                out.append({
                    "name": f"metrics:{scope}", "ph": "C", "ts": max_ts,
                    "pid": _PID, "tid": 0, "args": leaves,
                })
    # Track-naming metadata (Perfetto reads these to label threads).
    meta: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro"},
    }]
    for tid, name in sorted(thread_names.items()):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": name},
        })
    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": EXPORT_SCHEMA,
            "clock": "virtual" if virtual else "wall",
            "events": len(events),
            "source": source,
        },
    }


def write_chrome_trace(
    trace_path: str,
    out_path: str,
    metrics: dict | None = None,
    counter_every: int = 64,
) -> dict:
    """Read a JSONL/gz trace file and write its Chrome trace-event JSON.

    Torn final lines are forgiven (a killed run's trace still exports).
    Returns the exported document (also written to ``out_path``).
    """
    events = read_trace(trace_path, tolerate_truncated_tail=True)
    doc = export_chrome_trace(
        events, metrics=metrics, counter_every=counter_every,
        source=trace_path,
    )
    with open(out_path, "w", encoding="utf-8") as fh:
        try:  # C canonical encoder when built — byte-identical output
            from .._speedups import dumps as _c_dumps
        except ImportError:
            _c_dumps = None
        if _c_dumps is not None:
            try:
                fh.write(_c_dumps(doc, False))
            except (TypeError, ValueError, RecursionError):
                json.dump(doc, fh, separators=(",", ":"))
        else:
            json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return doc
