"""The regression-attribution engine: explain a perf delta, ranked.

A gate failure ("e1-grid went from 3.9 s to 4.5 s") names the symptom;
this module names the cause.  :func:`attribute_runs` diffs two runs at
the *profile* level — per-span self-time deltas, per-span I/O-round
counts, stripe-width means, and the config knobs the runs were indexed
under — and emits a ranked ``repro.attrib/1`` report whose findings
read like the diagnosis a human would write::

    distribute self-time +1.9 s, rounds unchanged
        ⇒ per-round dispatch regressed

The round-count cross-check is the heart of the heuristic: the paper's
cost model says *schedule* changes move the round count, while
*constant-factor* changes (dispatch overhead, kernel backends, fusion)
move seconds-per-round.  A span that got slower with its rounds
unchanged therefore regressed per round; one whose rounds grew changed
schedule.  Inputs are ``repro.profile/1`` docs (self-time basis) or
``repro.run_report/1`` docs (phase wall-time basis — reports carry no
self time); both carry per-span round counts and stripe histograms.

Wired into ``repro attribute A B`` and ``repro bench compare
--attribute`` (see :mod:`repro.cli`), reading runs from the
:class:`~repro.obs.history.RunHistory` index.
"""

from __future__ import annotations

from ..analysis.reporting import Table
from .profile import PROFILE_SCHEMA
from .report import SCHEMA as REPORT_SCHEMA

__all__ = ["ATTRIB_SCHEMA", "attribute_runs", "render_attrib"]

ATTRIB_SCHEMA = "repro.attrib/1"

#: Spans whose |Δ| is below max(ABS_NOISE_S, REL_NOISE × total) get the
#: "unchanged" verdict instead of a causal story.
_ABS_NOISE_S = 0.005
_REL_NOISE = 0.01

#: Round counts within this relative window count as "unchanged" (round
#: counts are deterministic in this simulator, but reports built from
#: truncated traces can drop a few).
_ROUND_TOL = 0.02


def _doc_kind(doc: dict, label: str) -> str:
    schema = doc.get("schema")
    if schema == PROFILE_SCHEMA:
        return "profile"
    if schema == REPORT_SCHEMA:
        return "report"
    raise ValueError(
        f"cannot attribute {label}: schema {schema!r} is neither "
        f"{PROFILE_SCHEMA} nor {REPORT_SCHEMA}"
    )


def _spans_of(doc: dict, kind: str, basis: str) -> dict[str, dict]:
    """``{span name: {"t": seconds, "rounds": int, "count": int}}``."""
    out: dict[str, dict] = {}
    if kind == "profile":
        for h in doc.get("hotspots") or []:
            t = h.get(basis if basis in h else "wall_s", 0.0) or 0.0
            out[h.get("name", "?")] = {
                "t": float(t),
                "rounds": int(h.get("rounds") or 0),
                "count": int(h.get("count") or 0),
            }
        return out
    for p in doc.get("phases") or []:
        rounds = int(p.get("read_ios") or 0) + int(p.get("write_ios") or 0)
        if not rounds:
            rounds = int(p.get("ios") or 0)
        out[p.get("name", "?")] = {
            "t": float(p.get("wall_s") or 0.0),
            "rounds": rounds,
            "count": int(p.get("count") or 0),
        }
    return out


def _total_of(doc: dict, kind: str) -> float:
    if kind == "profile":
        return float(doc.get("total_wall_s") or 0.0)
    return sum(float(p.get("wall_s") or 0.0) for p in doc.get("phases") or [])


def _rounds_of(doc: dict, kind: str) -> int:
    if kind == "profile":
        return int(((doc.get("io") or {}).get("rounds") or {}).get("total") or 0)
    ios = 0
    for p in doc.get("phases") or []:
        ios += int(p.get("read_ios") or 0) + int(p.get("write_ios") or 0)
    return ios


def _mean_width(doc: dict, kind: str, direction: str) -> float | None:
    """Mean stripe width (blocks per physical round) of one direction."""
    if kind == "profile":
        hist = ((doc.get("io") or {}).get("stripe_width") or {}).get(direction)
    else:
        hist = (doc.get("stripe_width") or {}).get(direction)
    if not hist:
        return None
    total = blocks = 0
    for width, count in hist.items():
        total += int(count)
        blocks += int(width) * int(count)
    return round(blocks / total, 2) if total else None


def _rounds_changed(a: int, b: int) -> bool:
    if a == b:
        return False
    if a == 0 or b == 0:
        return True
    return abs(b - a) / a > _ROUND_TOL


def _verdict(delta_s: float, rounds_a: int, rounds_b: int, noise: float) -> str:
    if abs(delta_s) < noise:
        return "unchanged"
    changed = _rounds_changed(rounds_a, rounds_b)
    if not changed and (rounds_a or rounds_b):
        return (
            "per-round dispatch regressed (rounds unchanged)"
            if delta_s > 0
            else "per-round dispatch improved (rounds unchanged)"
        )
    if changed:
        grew = rounds_b > rounds_a
        if delta_s > 0:
            return (
                "more I/O rounds (schedule changed)"
                if grew else "slower despite fewer rounds"
            )
        return (
            "fewer I/O rounds (schedule changed)"
            if not grew else "faster despite more rounds"
        )
    return "self-time regressed" if delta_s > 0 else "self-time improved"


def _meta_ref(meta: dict | None, doc: dict, kind: str) -> dict:
    meta = meta or {}
    return {
        "id": meta.get("id", ""),
        "kind": kind,
        "commit": meta.get("commit", "") or doc.get("commit", ""),
        "host_key": meta.get("host_key", ""),
        "source": meta.get("source", ""),
    }


def attribute_runs(
    a_doc: dict,
    b_doc: dict,
    a_meta: dict | None = None,
    b_meta: dict | None = None,
    top: int | None = None,
) -> dict:
    """Diff run B against baseline A at the profile level, ranked.

    ``a_doc``/``b_doc`` are ``repro.profile/1`` or ``repro.run_report/1``
    documents (deltas are B − A, so "regressed" means B is worse);
    ``a_meta``/``b_meta`` are their ``repro.run_index/1`` records when
    available — the source of commit hashes and config deltas.  Returns
    a ``repro.attrib/1`` dict; render with :func:`render_attrib`.
    """
    kind_a = _doc_kind(a_doc, "run A")
    kind_b = _doc_kind(b_doc, "run B")
    basis = "self_s" if kind_a == kind_b == "profile" else "wall_s"
    basis_label = "self-time" if basis == "self_s" else "wall-time"
    spans_a = _spans_of(a_doc, kind_a, basis)
    spans_b = _spans_of(b_doc, kind_b, basis)
    total_a = _total_of(a_doc, kind_a)
    total_b = _total_of(b_doc, kind_b)
    noise = max(_ABS_NOISE_S, _REL_NOISE * max(total_a, total_b))

    names = list(spans_a)
    names.extend(n for n in spans_b if n not in spans_a)
    rows = []
    for name in names:
        a = spans_a.get(name, {"t": 0.0, "rounds": 0, "count": 0})
        b = spans_b.get(name, {"t": 0.0, "rounds": 0, "count": 0})
        delta = b["t"] - a["t"]
        rows.append({
            "name": name,
            "a_s": round(a["t"], 4),
            "b_s": round(b["t"], 4),
            "delta_s": round(delta, 4),
            "a_rounds": a["rounds"],
            "b_rounds": b["rounds"],
            "rounds_unchanged": not _rounds_changed(a["rounds"], b["rounds"]),
            "verdict": _verdict(delta, a["rounds"], b["rounds"], noise),
        })
    rows.sort(key=lambda r: (-abs(r["delta_s"]), r["name"]))
    total_abs = sum(abs(r["delta_s"]) for r in rows)
    for r in rows:
        r["pct_of_delta"] = (
            round(100.0 * r["delta_s"] / total_abs, 1) if total_abs else 0.0
        )
    if top is not None and top > 0:
        rows = rows[:top]

    config_rows = []
    cfg_a = (a_meta or {}).get("config") or {}
    cfg_b = (b_meta or {}).get("config") or {}
    for key in sorted(set(cfg_a) | set(cfg_b)):
        va, vb = cfg_a.get(key, "(default)"), cfg_b.get(key, "(default)")
        if va != vb:
            config_rows.append({"key": key, "a": va, "b": vb})

    stripes = []
    for direction in ("read", "write"):
        wa = _mean_width(a_doc, kind_a, direction)
        wb = _mean_width(b_doc, kind_b, direction)
        if wa is not None or wb is not None:
            stripes.append({"kind": direction, "a_mean": wa, "b_mean": wb})

    findings = []
    for r in rows:
        if r["verdict"] == "unchanged":
            continue
        rounds_part = (
            "rounds unchanged" if r["rounds_unchanged"]
            else f"rounds {r['a_rounds']} → {r['b_rounds']}"
        )
        verdict = r["verdict"].replace(" (rounds unchanged)", "")
        findings.append(
            f"{r['name']} {basis_label} {r['delta_s']:+.2f} s, "
            f"{rounds_part} ⇒ {verdict}"
        )
        if len(findings) >= 3:
            break
    for c in config_rows:
        findings.append(f"config delta: {c['key']} {c['a']!r} → {c['b']!r}")

    return {
        "schema": ATTRIB_SCHEMA,
        "basis": basis,
        "a": _meta_ref(a_meta, a_doc, kind_a),
        "b": _meta_ref(b_meta, b_doc, kind_b),
        "total": {
            "a_s": round(total_a, 4),
            "b_s": round(total_b, 4),
            "delta_s": round(total_b - total_a, 4),
        },
        "rounds": {
            "a": _rounds_of(a_doc, kind_a),
            "b": _rounds_of(b_doc, kind_b),
        },
        "stripe_width": stripes,
        "spans": rows,
        "config": config_rows,
        "findings": findings,
    }


def render_attrib(attrib: dict) -> list[Table]:
    """Aligned tables for one ``repro.attrib/1`` report (golden-pinned)."""
    basis_label = "self" if attrib.get("basis") == "self_s" else "wall"
    a, b = attrib.get("a") or {}, attrib.get("b") or {}
    title = "attribution"
    if a.get("commit") or b.get("commit"):
        title += f" · {a.get('commit') or '?'} → {b.get('commit') or '?'}"
    title += f" · ranked by |Δ {basis_label} time|"
    spans = Table(
        ["span", f"{basis_label} s (A)", f"{basis_label} s (B)",
         "Δ s", "Δ share %", "rounds (A)", "rounds (B)", "verdict"],
        title=title,
    )
    for r in attrib.get("spans") or []:
        spans.add(
            r["name"], r["a_s"], r["b_s"], r["delta_s"], r["pct_of_delta"],
            r["a_rounds"], r["b_rounds"], r["verdict"],
        )
    tables = [spans]

    totals = Table(["metric", "A", "B", "Δ"], title="run totals")
    total = attrib.get("total") or {}
    totals.add("total s", total.get("a_s"), total.get("b_s"),
               total.get("delta_s"))
    rounds = attrib.get("rounds") or {}
    totals.add("I/O rounds", rounds.get("a"), rounds.get("b"),
               (rounds.get("b") or 0) - (rounds.get("a") or 0))
    for s in attrib.get("stripe_width") or []:
        wa, wb = s.get("a_mean"), s.get("b_mean")
        delta = (
            round(wb - wa, 2) if wa is not None and wb is not None else None
        )
        totals.add(f"mean {s['kind']} width (blocks)", wa, wb, delta)
    tables.append(totals)

    config = attrib.get("config") or []
    if config:
        ct = Table(["config", "A", "B"], title="config deltas")
        for c in config:
            ct.add(c["key"], c["a"], c["b"])
        tables.append(ct)
    return tables
