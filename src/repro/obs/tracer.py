"""Span/event tracer with JSONL persistence and a zero-cost disabled path.

Event schema (one JSON object per line in a trace file)::

    {"ev": "begin", "span": 3, "parent": 1, "name": "distribute",
     "ts": 0.0123, "attrs": {"level": 0}}
    {"ev": "end",   "span": 3, "name": "distribute", "ts": 0.0456,
     "wall_s": 0.0333, "attrs": {"level": 0, "ios": 182, "cpu_time": 4110}}
    {"ev": "event", "span": 3, "name": "balance.round", "ts": 0.02,
     "attrs": {"round": 7, "swapped": 2, "max_balance_factor": 1.5}}

``ts`` is seconds since the tracer was created (monotonic clock).  ``end``
events repeat the final attribute set — cost attribution recorded with
:meth:`Span.annotate` during the span (model I/Os, PRAM time, hierarchy
memory time) lands there, so offline consumers only need ``end`` lines to
reconstruct the per-phase breakdown.

The disabled path: :data:`NULL_TRACER` (a :class:`NullTracer`) exposes the
same interface with constant no-op objects — ``span()`` returns a shared
reusable context manager, ``event()`` returns immediately.  Machines keep
their observation attribute as ``None`` by default and guard hooks with a
single ``is not None`` check, so un-instrumented runs execute the same
arithmetic as before the instrumentation existed (counted I/O and model
costs are bit-identical).
"""

from __future__ import annotations

import gzip
import io as _io
import json
import os
import time
from typing import Callable, Iterable, TextIO

from .columnar import ColumnarJournal
from .metrics import MetricsRegistry

try:  # optional C canonical-JSON encoder — byte-identical fast path
    from .._speedups import dumps as _c_dumps
except ImportError:
    _c_dumps = None

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Observation",
    "JsonlSink",
    "ListSink",
    "read_trace",
]


class ListSink:
    """Collect emitted events in memory (the default sink)."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)

    def close(self) -> None:
        """Nothing to flush."""


class JsonlSink:
    """Stream events to a JSONL file (one compact JSON object per line).

    Paths ending in ``.gz`` are written gzip-compressed (with ``mtime=0``
    so repeated runs of a deterministic trace produce byte-identical
    files — the same convention the golden corpus uses).  Every trace
    reader in the repo (:func:`read_trace`, ``summarize_trace``,
    ``repro report`` / ``repro profile``) transparently reopens them.
    """

    def __init__(self, path_or_file: str | TextIO):
        self._extra: list = []
        if hasattr(path_or_file, "write"):
            self._fh: TextIO = path_or_file  # type: ignore[assignment]
            self._owned = False
        elif str(path_or_file).endswith(".gz"):
            raw = open(path_or_file, "wb")
            gz = gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
            self._fh = _io.TextIOWrapper(gz, encoding="utf-8")
            self._extra = [gz, raw]  # GzipFile.close() leaves `raw` open
            self._owned = True
        else:
            self._fh = open(path_or_file, "w")
            self._owned = True

    def emit(self, event: dict) -> None:
        """Write the event as one compact JSON line."""
        if _c_dumps is not None:
            try:
                self._fh.write(_c_dumps(event, False))
                self._fh.write("\n")
                return
            except (TypeError, ValueError, RecursionError):
                pass  # numpy scalar or similar: stdlib path coerces it
        self._fh.write(json.dumps(event, separators=(",", ":"), default=_jsonable))
        self._fh.write("\n")

    def close(self) -> None:
        """Flush, and close the file if this sink opened it."""
        self._fh.flush()
        if self._owned:
            self._fh.close()
            for layer in self._extra:
                layer.close()


def _jsonable(value):
    """Fallback encoder: numpy scalars and anything with ``item()``/``tolist()``."""
    for attr in ("item", "tolist"):
        fn = getattr(value, attr, None)
        if fn is not None:
            return fn()
    return str(value)


class Span:
    """One live span; use as returned by :meth:`Tracer.span`.

    ``annotate(**attrs)`` merges attribution (model costs, counts) into the
    span; the merged attrs are emitted on the ``end`` event.
    """

    __slots__ = ("tracer", "span_id", "parent_id", "name", "attrs", "t0", "_done")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int | None,
                 name: str, attrs: dict):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self._done = False

    def annotate(self, **attrs) -> "Span":
        """Attach/overwrite attributes (emitted with the ``end`` event)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Emit a point event parented to this span."""
        self.tracer._emit_event(name, self.span_id, attrs)

    def __enter__(self) -> "Span":
        self.tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._end(self, error=exc_type.__name__ if exc_type else None)


class Tracer:
    """Nested span/event recorder.

    Spans nest via an explicit stack (``with tracer.span("distribute"):``);
    point events attach to the innermost open span.  Every event goes to
    the ``sink`` as it happens (JSONL for offline analysis, the default
    :class:`ListSink` for in-process reports).
    """

    def __init__(self, sink=None, clock: Callable[[], float] = time.perf_counter,
                 keep_events: bool = True):
        self.sink = sink
        self._clock = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self._next_id = 1
        self.enabled = True
        #: Optional span-end observer (``observe_span_end(name, attrs)``)
        #: — the memory-telemetry sampler attaches here.  Span begin/end
        #: is the cold path (one pair per phase, not per I/O), so the
        #: detached cost is a single ``is not None`` test.
        self.memory = None
        self._events: list[dict] | None = [] if keep_events else None
        # Columnar fast path (see obs/columnar.py): activated lazily by
        # the first scalar_channel() request.  None = classic dict-per-
        # event storage, kept as the bit-for-bit reference.
        self._journal: ColumnarJournal | None = None
        self._mat_cache: tuple[int, list] | None = None

    def _emit(self, record: dict) -> None:
        journal = self._journal
        if journal is not None:
            journal.literal(record)
        elif self._events is not None:
            self._events.append(record)
        if self.sink is not None:
            self.sink.emit(record)

    # ----------------------------------------------------------- recording

    def _now(self) -> float:
        return self._clock() - self._epoch

    def span(self, name: str, **attrs) -> Span:
        """Open a nested span (context manager)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, self._next_id, parent, name, attrs)
        self._next_id += 1
        return span

    def event(self, name: str, **attrs) -> None:
        """Emit a point event under the innermost open span.

        Hot path (machines emit one event per parallel I/O): the record is
        built and delivered inline — identical content to
        :meth:`_emit_event` → :meth:`_emit`, minus two call frames.
        """
        stack = self._stack
        t = self._clock() - self._epoch
        record = {
            "ev": "event",
            "span": stack[-1].span_id if stack else None,
            "name": name,
            # round(0.0, 6) == 0.0: skip the call under pinned clocks
            # (the exec layer's deterministic-payload mode).
            "ts": round(t, 6) if t else 0.0,
            "attrs": attrs,
        }
        journal = self._journal
        if journal is not None:
            journal.literal(record)
        elif self._events is not None:
            self._events.append(record)
        if self.sink is not None:
            self.sink.emit(record)

    def _emit_event(self, name: str, span_id: int | None, attrs: dict) -> None:
        self._emit(
            {"ev": "event", "span": span_id, "name": name, "ts": round(self._now(), 6),
             "attrs": attrs}
        )

    def _begin(self, span: Span) -> None:
        span.t0 = self._now()
        self._stack.append(span)
        self._emit(
            {"ev": "begin", "span": span.span_id, "parent": span.parent_id,
             "name": span.name, "ts": round(span.t0, 6), "attrs": dict(span.attrs)}
        )

    def _end(self, span: Span, error: str | None = None) -> None:
        if span._done:  # pragma: no cover - defensive
            return
        span._done = True
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()  # tolerate mis-nested exits
        if self._stack:
            self._stack.pop()
        now = self._now()
        record = {
            "ev": "end", "span": span.span_id, "parent": span.parent_id,
            "name": span.name, "ts": round(now, 6),
            "wall_s": round(now - span.t0, 6), "attrs": dict(span.attrs),
        }
        if error:
            record["error"] = error
        self._emit(record)
        if self.memory is not None:
            self.memory.observe_span_end(span.name, span.attrs)

    def close(self) -> None:
        """Close any dangling spans and flush the sink."""
        while self._stack:
            self._end(self._stack[-1])
        if self.sink is not None:
            self.sink.close()

    # ------------------------------------------------------- columnar path

    def scalar_channel(self, name: str, keys: tuple):
        """Open a columnar fast-path channel for one fixed event shape.

        Returns an :class:`~repro.obs.columnar.EventChannel` whose
        ``append(*values)`` records the event ``{"ev": "event", ...,
        "name": name, "attrs": dict(zip(keys, values))}`` without
        building the dict (materialized lazily, bit-identical, in global
        order).  Values must be plain scalars — see the appender
        contract in :mod:`repro.obs.columnar`.

        Returns ``None`` when the tracer cannot take the columnar path:
        a live sink needs every event as a dict at emit time, and
        ``keep_events=False`` tracers have nothing to store at all —
        callers must then fall back to the classic per-event API.
        ``REPRO_OBS_COLUMNAR=0`` forces that fallback everywhere, keeping
        the dict-per-event path selectable as the differential reference.
        """
        if self.sink is not None or self._events is None:
            return None
        if os.environ.get("REPRO_OBS_COLUMNAR", "1") in ("0", "off"):
            return None
        journal = self._journal
        if journal is None:
            journal = self._journal = ColumnarJournal()
            # Adopt anything recorded before activation as literals so
            # the global order is preserved.
            for record in self._events:
                journal.literal(record)
            self._events = []
        return journal.channel(self, name, keys)

    def payload_events(self) -> tuple[list, bool]:
        """``(events, roundtrip_safe)`` for payload building.

        ``roundtrip_safe=True`` guarantees ``json.loads(json.dumps(events))``
        is value-identical to ``events`` (plain scalar trees only), which
        lets the exec layer skip the canonicalizing JSON round-trip for
        the trace portion of a payload.  Only the columnar path can make
        that promise cheaply: channel values are scalars by contract and
        the few literal records are scanned incrementally.
        """
        journal = self._journal
        if journal is None:
            return self.events, False
        return self.events, journal.literals_json_safe()

    # ---------------------------------------------------------- inspection

    @property
    def events(self) -> list[dict]:
        """The in-memory event list (empty when ``keep_events=False``).

        Under the columnar fast path this materializes (and caches) the
        dicts; the result is a snapshot — recording more events after
        reading it returns a fresh, longer list on the next access.
        """
        journal = self._journal
        if journal is None:
            return self._events if self._events is not None else []
        cache = self._mat_cache
        if cache is not None and cache[0] == journal.n:
            return cache[1]
        events = journal.materialize()
        self._mat_cache = (journal.n, events)
        return events


class _NullSpan:
    """Reusable no-op span: every method returns instantly."""

    __slots__ = ()

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing (the near-zero-overhead default)."""

    enabled = False
    events: list = []
    memory = None

    def span(self, name: str, **attrs) -> _NullSpan:
        """The shared reusable no-op span."""
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        """Discard the event."""

    def scalar_channel(self, name: str, keys: tuple):
        """No columnar path on a null tracer (callers fall back)."""
        return None

    def payload_events(self) -> tuple[list, bool]:
        """No events, nothing to round-trip."""
        return [], False

    def close(self) -> None:
        """Nothing to flush."""


NULL_TRACER = NullTracer()


class Observation:
    """The bundle the simulators accept: a metrics registry + a tracer.

    ``Observation()`` records in memory; ``Observation(trace_path=...)``
    streams the trace to JSONL as it happens.  ``Observation.disabled()``
    returns a shared instance whose tracer is :data:`NULL_TRACER` and whose
    registry is still live (cheap) — but machines treat an absent
    observation (``None``) as "don't even look", which is the default.
    """

    def __init__(self, registry: MetricsRegistry | None = None, tracer: Tracer | None = None,
                 trace_path: str | None = None, memory=None):
        if tracer is None:
            tracer = Tracer(JsonlSink(trace_path)) if trace_path else Tracer()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        #: Optional :class:`~repro.obs.memory.MemoryTelemetry` sampler —
        #: wired onto the tracer's span-end path so top-level phase
        #: boundaries get peak-RSS samples (out of band, never traced).
        self.memory = memory
        if memory is not None:
            tracer.memory = memory
        #: Callbacks the sorts register on every BalanceEngine they build
        #: (signature ``cb(engine, info)`` — see
        #: :meth:`repro.core.balance.BalanceEngine.add_round_observer`).
        #: The :class:`~repro.obs.audit.TheoryAuditor` appends its round
        #: checker here so Invariants 1 & 2 and the Theorem 4 factor are
        #: verified after every matching round of every engine in the run.
        self.engine_observers: list = []

    _DISABLED: "Observation | None" = None

    @classmethod
    def disabled(cls) -> "Observation":
        """A shared no-op-tracer observation (metrics still collected)."""
        if cls._DISABLED is None:
            obs = cls.__new__(cls)
            obs.registry = MetricsRegistry("disabled")
            obs.tracer = NULL_TRACER
            obs.memory = None
            obs.engine_observers = []
            cls._DISABLED = obs
        return cls._DISABLED

    def scope(self, name: str) -> MetricsRegistry:
        """Shorthand for ``registry.scope(name)``."""
        return self.registry.scope(name)

    def span(self, name: str, **attrs):
        """Shorthand for ``tracer.span(...)``."""
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        """Shorthand for ``tracer.event(...)``."""
        self.tracer.event(name, **attrs)

    def close(self) -> None:
        """Close the tracer (ends dangling spans, flushes the sink)."""
        self.tracer.close()


def _open_trace(path: str) -> TextIO:
    """Open a trace file, transparently decompressing gzip.

    Detection is by magic bytes (``\\x1f\\x8b``), not extension, so a
    ``.jsonl`` that is secretly gzipped (or a ``.gz`` that is not) still
    opens correctly.
    """
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path)


def read_trace(
    path_or_lines: str | Iterable[str], tolerate_truncated_tail: bool = False
) -> list[dict]:
    """Load a JSONL trace back into a list of event dicts.

    Accepts a path (plain or gzipped JSONL) or an iterable of lines; blank
    lines are skipped, malformed lines raise ``ValueError`` with the
    offending line number.  ``tolerate_truncated_tail=True`` forgives a
    malformed **final** line — the signature of a run that crashed or was
    interrupted mid-write — while still rejecting corruption anywhere
    else; offline summarizers pass it so partial traces stay readable.
    """
    if isinstance(path_or_lines, str):
        with _open_trace(path_or_lines) as fh:
            lines = fh.readlines()
    else:
        lines = list(path_or_lines)
    events = []
    last_index = len(lines)
    for i, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if tolerate_truncated_tail and i == last_index:
                break  # torn tail of an interrupted run
            raise ValueError(f"bad trace line {i}: {exc}") from None
    return events
