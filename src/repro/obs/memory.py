"""Memory telemetry: the opt-out gate and the per-phase RSS sampler.

The design rule of this package — measurements never perturb what they
measure — holds for memory too:

* The *counters* (arena occupancy / high-water gauges in
  :mod:`repro.pdm.store`, the internal-memory ledger high water in
  :mod:`repro.pdm.machine`) are always on: a handful of integer
  adds/compares on paths that already move whole record blocks.
* The *surfacing* (stderr ``[mem]`` chatter, ``--stats-json`` blocks,
  progress-channel fields, the ``_mem_stats`` payload sidecar) is gated
  by ``REPRO_MEM_TELEMETRY`` (default on; ``0``/``off`` disables) and is
  strictly out of band — the determinism suite proves exec payloads are
  bit-identical with telemetry on vs. off.

:class:`MemoryTelemetry` rides the tracer's span-end path (cold — one
call per phase, not per I/O) and samples :func:`peak_rss_kb` at each
top-level phase boundary, answering "which phase drove the process to
its peak footprint" without instrumenting any allocation site.
"""

from __future__ import annotations

import os

from ..util.host import peak_rss_kb

__all__ = ["MemoryTelemetry", "PHASES", "memory_telemetry_enabled", "peak_rss_kb"]

#: Top-level algorithm phases worth an RSS sample — the same set the
#: progress channel announces (see ``ProgressSink.PHASES``).
PHASES = ("partition", "distribute", "recurse", "base-case", "merge")


def memory_telemetry_enabled() -> bool:
    """True unless ``REPRO_MEM_TELEMETRY`` opts out (``""``/``0``/``off``).

    Gates only the *surfacing* of memory telemetry; the underlying
    gauges are maintained unconditionally (they are too cheap to branch
    on and the differential suite pins them).
    """
    return os.environ.get("REPRO_MEM_TELEMETRY", "1") not in ("", "0", "off")


class MemoryTelemetry:
    """Phase-boundary RSS sampler, attached as ``tracer.memory``.

    The tracer invokes :meth:`observe_span_end` from its span-end path
    (one ``is not None`` test when detached, mirroring how machines
    guard their observation hooks); top-level phase spans each get one
    :func:`peak_rss_kb` sample.  Samples never enter the trace or any
    payload — they are read back through :meth:`snapshot` by the CLI
    and profile surfaces only.
    """

    def __init__(self, phases=PHASES):
        self.phases = frozenset(phases)
        self.phase_rss: list[dict] = []

    def observe_span_end(self, name: str, attrs: dict) -> None:
        """Sample RSS when a top-level phase span closes."""
        if name in self.phases and not attrs.get("level", 0):
            self.phase_rss.append({"phase": name, "rss_kb": peak_rss_kb()})

    def snapshot(self) -> dict:
        """The collected samples plus the process-lifetime peak."""
        samples = list(self.phase_rss)
        peak = max((s["rss_kb"] for s in samples), default=0)
        return {"phase_rss": samples, "peak_rss_kb": max(peak, peak_rss_kb())}
