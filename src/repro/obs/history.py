"""The run-history index: one queryable store over every run artifact.

Single-run artifacts are rich but isolated — a ``repro.run_report/1``
knows its phases, a ``repro.profile/1`` its hotspots, a ledger point its
wall-clock — and the question PRs 7/8 had to answer by hand ("which
phase regressed against which commit?") spans *runs*.  This module is
the cross-run substrate (schema ``repro.run_index/1``):

* an **append-friendly, host-keyed index**: one ``index.jsonl`` of
  compact index records (same durability conventions as the ledger —
  append order kept, torn tail forgiven) plus a ``runs/`` directory of
  verbatim artifacts, each stored under a content-hashed id so repeated
  ingests deduplicate instead of double-counting;
* **content-based kind detection**: run reports, theory audits, profile
  summaries, ledger points, hand-recorded ``BENCH_*.json`` points,
  benchmark sidecars, and sweep ``--stats-json`` dumps are recognized by
  their ``schema`` stamp; raw traces (plain or gzipped JSONL of ``ev``
  records) are profiled on ingest and indexed as profiles;
* a small **query surface** (:meth:`RunHistory.records`) filtered by
  kind / series / commit / host key — what ``repro history`` and the
  attribution engine (:mod:`repro.obs.attrib`) and dashboard
  (:mod:`repro.obs.dashboard`) are built on.

Round-trip contract: for document artifacts, ``load_artifact`` returns
a dict value-identical to the ingested source (the property suite pins
ingest → query → load against the original).  Traces are the one
derived case — the stored artifact is their profile, since a multi-MB
event stream is not a useful *index* entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from .. import __version__
from ..util import capture_host, host_key as _host_key_of
from .ledger import SERIES_SCHEMA
from .profile import PROFILE_SCHEMA, profile_trace
from .tracer import _open_trace, read_trace

__all__ = ["INDEX_SCHEMA", "RunHistory"]

INDEX_SCHEMA = "repro.run_index/1"

#: schema stamp → index kind.  Unknown schemas are refused loudly (an
#: index that silently swallows anything stops being queryable).
_SCHEMA_KINDS = {
    "repro.run_report/1": "report",
    "repro.audit/1": "audit",
    "repro.profile/1": "profile",
    SERIES_SCHEMA: "ledger",
    "repro.bench_point/1": "bench",
    "repro.bench_result/1": "bench",
    "repro.sweep_stats/1": "stats",
    "repro.serve_stats/1": "serve",
}

#: Environment knobs captured as run configuration at ingest time (only
#: the ones actually set — defaults are not configuration).
_CONFIG_ENV = (
    ("REPRO_IO_PLAN", "io_plan"),
    ("REPRO_KERNEL_BACKEND", "kernel_backend"),
    ("REPRO_PDM_STORE", "pdm_store"),
    ("REPRO_PDM_CHECKSUMS", "pdm_checksums"),
    ("REPRO_OBS_COLUMNAR", "obs_columnar"),
    ("REPRO_MEM_TELEMETRY", "mem_telemetry"),
)


def _capture_config() -> dict:
    """The REPRO_* knobs currently set in the environment."""
    cfg = {}
    for env, key in _CONFIG_ENV:
        value = os.environ.get(env)
        if value is not None:
            cfg[key] = value
    return cfg


def _artifact_id(kind: str, doc: dict) -> str:
    """Content-hashed id: ``<kind>-<sha256[:12] of canonical JSON>``."""
    canonical = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), default=str
    )
    return f"{kind}-{hashlib.sha256(canonical.encode('utf-8')).hexdigest()[:12]}"


def _summarize(kind: str, doc: dict) -> dict:
    """The small kind-specific summary an index record carries inline."""
    if kind == "report":
        result = doc.get("result") or {}
        summary = {
            "command": doc.get("command", ""),
            **{k: result[k] for k in (
                "records", "parallel_ios", "ratio", "verified",
            ) if k in result},
            "phases": len(doc.get("phases") or []),
        }
        audit = doc.get("audit")
        if isinstance(audit, dict):
            summary["audit_ok"] = audit.get("ok")
            summary["audit_violations"] = len(audit.get("violations") or [])
        return summary
    if kind == "audit":
        return {
            "ok": doc.get("ok"),
            "violations": len(doc.get("violations") or []),
            "checks": len(doc.get("checks") or []),
            "rounds_checked": doc.get("rounds_checked"),
        }
    if kind == "profile":
        hotspots = doc.get("hotspots") or []
        io = doc.get("io") or {}
        summary = {
            "total_wall_s": doc.get("total_wall_s"),
            "n_spans": doc.get("n_spans"),
            "rounds": (io.get("rounds") or {}).get("total"),
        }
        if hotspots:
            summary["top_span"] = hotspots[0].get("name")
            summary["top_self_s"] = hotspots[0].get("self_s")
        memory = doc.get("memory")
        if isinstance(memory, dict) and memory.get("peak_rss_kb"):
            summary["peak_rss_kb"] = memory["peak_rss_kb"]
        return summary
    if kind == "ledger":
        return {k: doc[k] for k in (
            "seconds", "records_per_sec", "us_per_record", "min_of",
            "cells", "records", "notes",
        ) if k in doc}
    if kind == "bench":
        summary = {k: doc[k] for k in ("name", "description") if k in doc}
        if "repro_version" in doc:
            summary["repro_version"] = doc["repro_version"]
        return summary
    if kind == "stats":
        runner = doc.get("runner") or {}
        summary = {k: runner[k] for k in (
            "executed", "served_from_cache", "failed", "retried",
        ) if k in runner}
        memory = runner.get("memory") or {}
        for k in ("high_water_blocks", "peak_rss_kb"):
            if memory.get(k):
                summary[k] = memory[k]
        return summary
    if kind == "serve":
        serve = doc.get("serve") or {}
        summary = {k: serve[k] for k in (
            "admitted", "coalesced", "cache_hits", "shed", "quota_rejected",
            "completed", "failed", "cancelled", "drain_seconds", "resumed",
        ) if k in serve}
        runner = doc.get("runner") or {}
        if "retried" in runner:
            summary["retried"] = runner["retried"]
        tenants = doc.get("tenants")
        if isinstance(tenants, dict):
            summary["tenants"] = len(tenants)
        return summary
    return {}


class RunHistory:
    """Indexed-JSONL run history under one root directory.

    Layout::

        <root>/index.jsonl      # one repro.run_index/1 record per line
        <root>/runs/<id>.json   # verbatim artifact (content-hashed id)

    The index is the queryable surface; the artifacts are the evidence
    the attribution engine and ``repro history show`` load back.
    """

    def __init__(self, root: str):
        self.root = root
        self.index_path = os.path.join(root, "index.jsonl")
        self.runs_dir = os.path.join(root, "runs")

    # ------------------------------------------------------------- ingest

    def ingest_path(
        self,
        path: str,
        commit: str = "",
        series: str = "",
        config: dict | None = None,
        require_version: bool = False,
        when: float | None = None,
    ) -> list[dict]:
        """Ingest one artifact file; returns the index records it produced.

        Content-detected: a single JSON document is ingested as itself; a
        JSONL of ledger points ingests every point; a JSONL of trace
        events (``ev`` records, plain or gzipped) is profiled first and
        ingested as a ``repro.profile/1``.
        """
        with _open_trace(path) as fh:
            first_line = ""
            for line in fh:
                first_line = line.strip()
                if first_line:
                    break
        if not first_line:
            raise ValueError(f"empty artifact: {path}")
        try:
            first = json.loads(first_line)
        except json.JSONDecodeError:
            first = None
        if isinstance(first, dict):
            # Line-oriented: a trace or a JSONL of schema-stamped docs.
            if "ev" in first and "schema" not in first:
                events = read_trace(path, tolerate_truncated_tail=True)
                doc = profile_trace(events)
                assert doc.get("schema") == PROFILE_SCHEMA
                return [self.ingest_doc(
                    doc, source=path, commit=commit, series=series,
                    config=config, require_version=require_version, when=when,
                )]
            lines = read_trace(path, tolerate_truncated_tail=True)
            return [
                self.ingest_doc(
                    doc, source=path, commit=commit, series=series,
                    config=config, require_version=require_version, when=when,
                )
                for doc in lines
            ]
        with _open_trace(path) as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict):
            raise ValueError(f"unrecognized artifact (not a JSON object): {path}")
        return [self.ingest_doc(
            doc, source=path, commit=commit, series=series,
            config=config, require_version=require_version, when=when,
        )]

    def ingest_doc(
        self,
        doc: dict,
        source: str = "",
        commit: str = "",
        series: str = "",
        config: dict | None = None,
        require_version: bool = False,
        when: float | None = None,
    ) -> dict:
        """Index one artifact dict (stored verbatim, deduplicated by content).

        ``require_version=True`` enforces the bench-file shape discipline:
        hand-recorded ``repro.bench_point/1`` docs must carry both their
        ``schema`` stamp and a ``repro_version`` (the nightly sidecar gate
        ingests ``BENCH_*.json`` under this flag).
        """
        schema = doc.get("schema")
        kind = _SCHEMA_KINDS.get(schema)
        if kind is None:
            raise ValueError(
                f"unrecognized artifact schema {schema!r}"
                + (f" in {source}" if source else "")
                + f" (expected one of {sorted(_SCHEMA_KINDS)})"
            )
        if require_version and kind == "bench" and not doc.get("repro_version"):
            raise ValueError(
                f"bench point {source or _artifact_id(kind, doc)!r} lacks a "
                "repro_version stamp (the ledger-grade shape discipline "
                "requires schema + repro_version on every recorded point)"
            )
        run_id = _artifact_id(kind, doc)
        existing = self._find(run_id)
        if existing is not None:
            return {**existing, "duplicate": True}

        host = doc.get("host") if isinstance(doc.get("host"), dict) else None
        hk = doc.get("host_key", "")
        if not hk and host is not None:
            hk = host.get("key", "")
            if not hk:
                try:
                    hk = _host_key_of(host)
                except KeyError:
                    hk = ""
        if not hk and host is None:
            hk = capture_host()["key"]
        ts = when
        if ts is None:
            ts = doc.get("ts") if isinstance(doc.get("ts"), (int, float)) else None
        if ts is None:
            ts = time.time()
        cfg = _capture_config()
        if config:
            cfg.update(config)
        record = {
            "schema": INDEX_SCHEMA,
            "id": run_id,
            "kind": kind,
            "schema_of": schema,
            "ts": round(float(ts), 3),
            "host_key": hk,
            "commit": commit or doc.get("commit", ""),
            "series": series or doc.get("series", ""),
            "config": cfg,
            "summary": _summarize(kind, doc),
            "artifact": f"runs/{run_id}.json",
            "source": source,
        }
        os.makedirs(self.runs_dir, exist_ok=True)
        artifact_path = os.path.join(self.runs_dir, f"{run_id}.json")
        with open(artifact_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, default=str)
            fh.write("\n")
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record

    # -------------------------------------------------------------- query

    def read(self) -> list[dict]:
        """All index records in append order; a torn final line is forgiven."""
        if not os.path.exists(self.index_path):
            return []
        return read_trace(self.index_path, tolerate_truncated_tail=True)

    def _find(self, run_id: str) -> dict | None:
        for record in self.read():
            if record.get("id") == run_id:
                return record
        return None

    def records(
        self,
        kind: str | None = None,
        series: str | None = None,
        commit: str | None = None,
        host_key: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Index records filtered by kind/series/commit/host, append order.

        ``commit`` matches on prefix (short hashes query long ones);
        ``limit`` keeps the **newest** N of the filtered set.
        """
        out = self.read()
        if kind is not None:
            out = [r for r in out if r.get("kind") == kind]
        if series is not None:
            out = [r for r in out if r.get("series") == series]
        if commit is not None:
            out = [
                r for r in out
                if str(r.get("commit", "")).startswith(commit)
                or commit.startswith(str(r.get("commit") or "\x00"))
            ]
        if host_key is not None:
            out = [r for r in out if r.get("host_key") == host_key]
        if limit is not None and limit >= 0:
            out = out[len(out) - limit:] if limit else []
        return out

    def get(self, run_id: str) -> dict:
        """The index record for ``run_id`` (prefix match accepted, unique)."""
        matches = [
            r for r in self.read()
            if r.get("id") == run_id or str(r.get("id", "")).startswith(run_id)
        ]
        exact = [r for r in matches if r.get("id") == run_id]
        if exact:
            return exact[0]
        if not matches:
            raise KeyError(f"no indexed run {run_id!r} in {self.root}")
        ids = sorted({r["id"] for r in matches})
        if len(ids) > 1:
            raise KeyError(f"ambiguous run id {run_id!r}: matches {ids}")
        return matches[0]

    def load_artifact(self, record: dict) -> dict:
        """The verbatim artifact a record points at."""
        path = os.path.join(self.root, record["artifact"])
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    # -------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Record count and per-kind tallies (for stderr summaries)."""
        records = self.read()
        kinds: dict[str, int] = {}
        for r in records:
            kinds[r.get("kind", "?")] = kinds.get(r.get("kind", "?"), 0) + 1
        return {
            "root": self.root,
            "records": len(records),
            "kinds": kinds,
            "repro_version": __version__,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunHistory({self.root!r})"
