"""Theory auditing: measured costs scored against the paper's bounds.

The paper's claims are *bounds*, not point predictions — Theorem 1's
optimal PDM I/O count, Theorems 2–3's hierarchy costs, and Theorem 4's
read-back-parallelism-within-~2x guarantee.  The observability layer
records raw counts; this module closes the loop by computing the bound
expressions from :mod:`repro.analysis.bounds` for the run's parameters and
reporting every measurement as a ``measured / bound`` constant-factor
ratio, plus live per-round verification of Invariants 1 & 2 and the
Theorem 4 factor through the Balance engine's round-observer hook.

Three layers:

* :class:`TheoryAuditor` — the live half.  :meth:`TheoryAuditor.install`
  appends its round checker to ``obs.engine_observers``; both sorts
  register every entry of that list on every :class:`BalanceEngine` they
  construct, so the auditor sees the post-round matrices of every
  distribution pass at every recursion level.  Violations never raise —
  they are recorded, emitted as ``audit.violation`` tracer events, and
  counted in the ``audit`` metrics scope (a monitor must outlive the run
  it monitors, unlike ``check_invariants=True`` which raises mid-sort).
* ``finish_pdm`` / ``finish_hierarchy`` — the scoring half: combine the
  round observations with the final result + machine parameters into an
  :class:`AuditReport` (schema ``repro.audit/1``) of bound ratios and
  pass/fail checks.
* :func:`record_cell_audit` — the sweep hook: writes the report's ratios
  as gauges under the ``audit`` metrics scope so per-cell audit results
  merge across a grid exactly like any other metric (gauge watermarks
  give the grid-wide worst case).

Bound checks are *informational* by default (``limit=None``): an
asymptotic reproduction verifies that the constant factor exists and is
stable, not a particular value.  Checks with a limit — the Theorem 4
factor (default 2.0) and the zero-violation invariant counts — gate
:attr:`AuditReport.ok`, which is what ``repro audit`` turns into its exit
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.bounds import (
    cpu_work_bound,
    sort_io_bound,
    theorem2_hypercube_extra,
    theorem2_log_bound,
    theorem2_power_bound,
    theorem3_bound,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tracer import Observation

__all__ = [
    "AuditCheck",
    "AuditReport",
    "TheoryAuditor",
    "record_cell_audit",
    "AUDIT_SCHEMA",
]

AUDIT_SCHEMA = "repro.audit/1"

#: Slack on the Theorem-4 comparison: the factor is a ratio of two exact
#: integers stored as IEEE doubles, so equality with the limit must not
#: flip on representation noise.
_EPS = 1e-9


@dataclass
class AuditCheck:
    """One measured-vs-theory line item.

    ``kind`` is ``"bound"`` (ratio = measured/bound, informational unless
    ``limit`` is set) or ``"invariant"`` (measured = violation count,
    limit = 0).  ``ratio`` is ``None`` when no closed-form bound applies
    (e.g. a constant cost function on HMM).
    """

    name: str
    kind: str
    measured: float
    bound: float | None = None
    ratio: float | None = None
    limit: float | None = None
    ok: bool = True
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-safe view of the check; ``None`` fields are omitted."""
        d = {
            "name": self.name,
            "kind": self.kind,
            "measured": self.measured,
            "ok": self.ok,
        }
        if self.bound is not None:
            d["bound"] = self.bound
        if self.ratio is not None:
            d["ratio"] = self.ratio
        if self.limit is not None:
            d["limit"] = self.limit
        if self.detail:
            d["detail"] = self.detail
        return d


def _bound_check(name: str, measured: float, bound: float | None,
                 limit: float | None = None, detail: str = "") -> AuditCheck:
    ratio = None
    ok = True
    if bound is not None and bound > 0:
        ratio = round(measured / bound, 4)
        if limit is not None:
            ok = ratio <= limit + _EPS
    return AuditCheck(
        name=name, kind="bound", measured=measured,
        bound=round(bound, 2) if bound is not None else None,
        ratio=ratio, limit=limit, ok=ok, detail=detail,
    )


@dataclass
class AuditReport:
    """The audit surface of one run (schema ``repro.audit/1``)."""

    target: str
    params: dict = field(default_factory=dict)
    checks: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    rounds_checked: int = 0

    @property
    def ok(self) -> bool:
        """True iff every limited check passed and no violation was seen."""
        return not self.violations and all(c.ok for c in self.checks)

    def check(self, name: str) -> AuditCheck:
        """Look up a check by name (KeyError if absent)."""
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(name)

    def to_dict(self) -> dict:
        """JSON-safe view of the whole report (``repro.audit/1``)."""
        return {
            "schema": AUDIT_SCHEMA,
            "target": self.target,
            "ok": self.ok,
            "params": dict(self.params),
            "rounds_checked": self.rounds_checked,
            "checks": [c.to_dict() for c in self.checks],
            "violations": list(self.violations),
        }

    def tables(self):
        """Human rendering (one aligned table, plus violations if any)."""
        from ..analysis.reporting import Table

        t = Table(
            ["check", "measured", "bound", "ratio", "limit", "ok"],
            title=f"theory audit · {self.target} "
                  f"({self.rounds_checked} rounds checked)",
        )
        for c in self.checks:
            t.add(
                c.name, c.measured,
                "-" if c.bound is None else c.bound,
                "-" if c.ratio is None else c.ratio,
                "-" if c.limit is None else c.limit,
                "PASS" if c.ok else "FAIL",
            )
        tables = [t]
        if self.violations:
            v = Table(["#", "check", "round", "detail"],
                      title=f"violations ({len(self.violations)})")
            for i, item in enumerate(self.violations, 1):
                v.add(i, item.get("check", "?"), item.get("round", "?"),
                      item.get("detail", ""))
            tables.append(v)
        return tables


class TheoryAuditor:
    """Live invariant/bound auditor for Balance Sort runs.

    Usage::

        obs = Observation(...)
        auditor = TheoryAuditor(theorem4_limit=2.0).install(obs)
        res = balance_sort_pdm(machine, data, obs=obs, check_invariants=False)
        report = auditor.finish_pdm(machine, res)
        assert report.ok

    ``check_invariants=False`` hands verification to the auditor: the
    engine stops raising mid-run and the auditor *observes* instead,
    checking Invariants 1 & 2 and the Theorem 4 balance factor against
    the post-round matrices after every matching round (the exact state
    the paper's invariants constrain).  Violations are recorded on the
    auditor, emitted as ``audit.violation`` tracer events, and counted
    under the ``audit`` metrics scope.
    """

    def __init__(self, theorem4_limit: float = 2.0):
        self.theorem4_limit = float(theorem4_limit)
        self.obs: "Observation | None" = None
        self.violations: list[dict] = []
        self.rounds_checked = 0
        self.worst_factor = 1.0

    # ------------------------------------------------------------- install

    def install(self, obs: "Observation") -> "TheoryAuditor":
        """Register the round checker on ``obs.engine_observers``.

        Both sorts add every callback in that list to every
        :class:`~repro.core.balance.BalanceEngine` they construct, so one
        ``install`` covers every distribution pass of the run.
        """
        self.obs = obs
        obs.engine_observers.append(self.check_round)
        return self

    # -------------------------------------------------------- round checks

    def check_round(self, engine, info: dict) -> None:
        """Non-raising Invariant 1/2 + Theorem 4 check (round observer).

        Runs after the round's writes complete, so ``engine.matrices``
        reflects exactly the state Invariant 2 constrains.
        """
        self.rounds_checked += 1
        mat = engine.matrices
        # Invariants via the matrices' cheap boolean queries (O(S·H')
        # scalar / O(1) under incremental maintenance — this runs after
        # every round); the vectorized detail scan only runs on failure.
        if not mat.invariant_1_ok():
            need = (mat.n_channels + 1) // 2
            zeros = (mat.A == 0).sum(axis=1)
            bad = np.nonzero(zeros < need)[0]
            self._violation(
                "invariant1", info,
                detail=f"rows {bad.tolist()} have < {need} zeros in A",
            )
        if not mat.invariant_2_ok():
            rows, cols = np.nonzero(mat.A > 1)
            self._violation(
                "invariant2", info,
                detail=f"2s remain at {list(zip(rows.tolist(), cols.tolist()))[:8]}",
            )
        # Theorem 4: max balance factor within the ~2x guarantee.
        factor = float(info["max_balance_factor"])
        self.worst_factor = max(self.worst_factor, factor)
        if factor > self.theorem4_limit + _EPS:
            self._violation(
                "theorem4", info,
                detail=f"balance factor {factor:.4f} > {self.theorem4_limit}",
            )

    def _violation(self, check: str, info: dict, detail: str) -> None:
        record = {"check": check, "round": info.get("round"), "detail": detail}
        self.violations.append(record)
        if self.obs is not None:
            self.obs.scope("audit").counter("violations").inc()
            self.obs.event("audit.violation", **record)

    # ------------------------------------------------------------- scoring

    def _invariant_checks(self) -> list[AuditCheck]:
        by_check: dict[str, int] = {}
        for v in self.violations:
            by_check[v["check"]] = by_check.get(v["check"], 0) + 1
        checks = []
        for name in ("invariant1", "invariant2"):
            count = by_check.get(name, 0)
            checks.append(AuditCheck(
                name=name, kind="invariant", measured=count, limit=0,
                ok=count == 0,
                detail=f"checked after {self.rounds_checked} rounds",
            ))
        return checks

    def finish_pdm(self, machine, result, params: dict | None = None) -> AuditReport:
        """Score a finished PDM run against Theorem 1 and Theorem 4.

        ``machine`` is the :class:`~repro.pdm.machine.ParallelDiskMachine`
        the sort ran on (its M/B/D/P parameterize the bounds); ``result``
        the :class:`~repro.core.sort_pdm.PDMSortResult`.
        """
        n = result.n_records
        io_bound = sort_io_bound(n, machine.M, machine.B, machine.D)
        work_bound = cpu_work_bound(n, machine.P)
        factor = max(self.worst_factor, float(result.max_balance_factor))
        checks = [
            _bound_check(
                "theorem1.parallel_ios", result.io_stats["total_ios"], io_bound,
                detail=f"(N/DB)·log(N/B)/log(M/B) with N={n} M={machine.M} "
                       f"B={machine.B} D={machine.D}",
            ),
            _bound_check(
                "theorem1.cpu_work", result.cpu["work"], work_bound,
                detail=f"(N/P)·log N with P={machine.P}",
            ),
            AuditCheck(
                name="theorem4.read_parallelism", kind="bound",
                measured=round(factor, 4), bound=None, ratio=round(factor, 4),
                limit=self.theorem4_limit,
                ok=factor <= self.theorem4_limit + _EPS,
                detail="max blocks on one channel / ceil(total/H'), worst "
                       "bucket over all rounds and the final matrices",
            ),
            *self._invariant_checks(),
        ]
        report = AuditReport(
            target="pdm",
            params={"n": n, "memory": machine.M, "block": machine.B,
                    "disks": machine.D, "processors": machine.P},
            checks=checks,
            violations=list(self.violations),
            rounds_checked=self.rounds_checked,
        )
        self._emit_gauges(report)
        return report

    def finish_hierarchy(self, machine, result,
                         params: dict | None = None) -> AuditReport:
        """Score a finished hierarchy run against Theorems 2–3 and 4.

        The bound is selected by the machine's model/cost-function regime:
        P-HMM with ``f = log x`` or ``x^alpha`` uses Theorem 2 (plus the
        hypercube ``T(H)`` term when the interconnect is a hypercube);
        P-BT uses Theorem 3.  Cost functions with no closed-form claim in
        the paper (``constant``, ``umh``) produce an informational check
        with no ratio.
        """
        n = result.n_records
        h = machine.h
        cost = machine.cost_fn.name
        alpha = getattr(machine.cost_fn, "alpha", None)
        bound = None
        bound_name = "theorem2.total_time"
        detail = f"model={machine.model} f={cost} H={h}"
        if machine.model == "bt":
            bound_name = "theorem3.total_time"
            bound = theorem3_bound(n, h, alpha if cost == "power" else None)
        elif machine.model == "hmm" and cost == "log":
            bound = theorem2_log_bound(n, h)
        elif machine.model == "hmm" and cost == "power":
            bound = theorem2_power_bound(n, h, alpha)
        else:
            detail += " (no closed-form bound in the paper)"
        factor = max(self.worst_factor, float(result.max_balance_factor))
        checks = [
            _bound_check(bound_name, round(result.total_time, 3), bound,
                         detail=detail),
        ]
        if getattr(machine, "interconnect", "pram") == "hypercube":
            checks.append(_bound_check(
                "theorem2.hypercube_extra", round(result.interconnect_time, 3),
                theorem2_hypercube_extra(n, h),
                detail="(N/(H log H))·log N·T(H) interconnect term",
            ))
        checks.append(AuditCheck(
            name="theorem4.read_parallelism", kind="bound",
            measured=round(factor, 4), bound=None, ratio=round(factor, 4),
            limit=self.theorem4_limit,
            ok=factor <= self.theorem4_limit + _EPS,
            detail="max blocks on one channel / ceil(total/H'), worst "
                   "bucket over all rounds and the final matrices",
        ))
        checks.extend(self._invariant_checks())
        report = AuditReport(
            target="hierarchy",
            params={"n": n, "h": h, "model": machine.model, "cost": cost,
                    **({"alpha": alpha} if cost == "power" else {})},
            checks=checks,
            violations=list(self.violations),
            rounds_checked=self.rounds_checked,
        )
        self._emit_gauges(report)
        return report

    def _emit_gauges(self, report: AuditReport) -> None:
        if self.obs is None:
            return
        record_cell_audit(self.obs, report)


def record_cell_audit(obs: "Observation", report: AuditReport) -> None:
    """Write an audit report's ratios as gauges under the ``audit`` scope.

    Sweep cells call this inside their zero-clock observations; the
    gauges (``audit.<check>.ratio`` plus ``audit.ok`` / ``audit.
    rounds_checked``) then merge across the grid like every other metric
    — gauge min/max watermarks give the grid-wide best/worst constant
    factor per theorem, which is what the per-model "constant-factor gap"
    trend needs.  Ratios are pure functions of deterministic measurements
    and closed-form bounds, so cached/parallel/serial sweeps stay
    byte-identical.
    """
    scope = obs.scope("audit")
    for check in report.checks:
        if check.ratio is not None:
            scope.gauge(f"{check.name}.ratio").set(check.ratio)
        if check.kind == "invariant":
            scope.gauge(f"{check.name}.violations").set(check.measured)
    scope.gauge("ok").set(1 if report.ok else 0)
    scope.gauge("rounds_checked").set(report.rounds_checked)
