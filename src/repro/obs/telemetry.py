"""Live telemetry: a streaming progress channel for long-running sweeps.

The obs stack up to PR 5 was entirely post-hoc: traces, reports, and the
journal all become readable *after* a run exits.  This module adds the
third leg — a **line-buffered JSONL progress stream** (schema
``repro.progress/1``) that the :class:`~repro.exec.ParallelRunner` and
the sorts' phase spans append to *while the sweep runs*, so a grid that
takes minutes is observable from the first second:

* ``repro sweep --live`` renders an in-place stderr progress view fed by
  the stream (:class:`LiveProgressView`);
* ``repro top <telemetry.jsonl>`` tails the same file from another
  terminal (or reads what is left of it after a SIGKILL — torn tails are
  forgiven exactly like the resilience journal's);
* any other consumer can follow the file with ``tail -f`` — one compact
  JSON object per line, flushed per line.

**The determinism contract is untouched.**  Telemetry is *run-level*
observability, like the PR 5 journal: the runner writes cell lifecycle
events from the coordinating process, and worker-side phase progress is
teed off the tracer's *sink* while payloads are built from the tracer's
in-memory event list — the payload bytes are provably identical with
telemetry on or off (tested, extending PR 1's measurements-bit-identical
guarantee).  Telemetry lines carry real wall-clock timestamps precisely
*because* they never enter a payload.

Event vocabulary (one JSON object per line; additive evolution)::

    {"ev": "sweep_start", "schema": "repro.progress/1", "ts": ...,
     "src": "runner", "task": "sort_pdm", "cells": 12, "jobs": 4,
     "grid": "<fingerprint>"}
    {"ev": "cell_start",  "key": "3f2a...", "index": 4, "attempt": 0}
    {"ev": "progress",    "src": "cell:3f2a...", "phase": "distribute",
     "rounds": 2048, "spans": 31, "max_balance_factor": 1.5}
    {"ev": "cell_retry",  "key": "3f2a...", "attempt": 1, "error": "..."}
    {"ev": "cell_finish", "key": "3f2a...", "index": 4, "cached": false,
     "failed": false, "seconds": 1.23, "records": 16000,
     "records_per_sec": 13008}
    {"ev": "pool_rebuilt", "reason": "crash"}
    {"ev": "sweep_end",   "cells": 12, "executed": 9, "cached": 3,
     "failed": 0, "seconds": 41.2}

Multi-process safety: every record is serialized to one line and written
with a single flushed ``write`` on an append-mode handle — on POSIX,
O_APPEND writes below the pipe-buffer size land atomically, so worker
processes and the runner can share one file without interleaving
corruption.  Readers still tolerate a torn *final* line (the SIGKILL
signature), the same forgiveness the journal and trace readers give.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager

from .memory import memory_telemetry_enabled, peak_rss_kb
from .tracer import read_trace

__all__ = [
    "PROGRESS_SCHEMA",
    "TelemetryWriter",
    "activate_telemetry",
    "active_telemetry",
    "ProgressSink",
    "read_telemetry",
    "aggregate_progress",
    "render_progress_line",
    "progress_tables",
    "LiveProgressView",
]

PROGRESS_SCHEMA = "repro.progress/1"

#: Point events counted as one I/O round trip (mirrors the profiler).
_ROUND_EVENTS = ("io.read", "io.write", "mem.step")


def _jsonable(value):
    for attr in ("item", "tolist"):
        fn = getattr(value, attr, None)
        if fn is not None:
            return fn()
    return str(value)


class TelemetryWriter:
    """Append-only, line-buffered JSONL writer for the progress channel.

    One :meth:`emit` = one complete line = one flushed write, so the file
    is tailable mid-sweep and safe to share between the runner process
    and its workers (each opens its own append handle).
    """

    def __init__(self, path: str, source: str = "runner", clock=time.time):
        self.path = path
        self.source = source
        self._clock = clock
        self._fh = open(path, "a", encoding="utf-8")

    def emit(self, ev: str, **fields) -> None:
        """Append one progress record (stamped with real wall-clock)."""
        record = {"ev": ev, "ts": round(self._clock(), 3), "src": self.source}
        record.update(fields)
        self._fh.write(
            json.dumps(record, separators=(",", ":"), default=_jsonable) + "\n"
        )
        self._fh.flush()

    def close(self) -> None:
        """Flush and close the underlying handle."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ------------------------------------------------------------------ ambient

#: The ambient telemetry writer for the currently executing attempt (or
#: None).  Mirrors the resilience injector's ambient pattern: the runner
#: installs a per-cell writer around task execution, and
#: :func:`~repro.exec.tasks.run_task` tees phase progress into it without
#: the task signature (or payload) changing at all.
_ACTIVE: "TelemetryWriter | None" = None


def active_telemetry() -> "TelemetryWriter | None":
    """The writer installed by :func:`activate_telemetry`, if any."""
    return _ACTIVE


@contextmanager
def activate_telemetry(writer: "TelemetryWriter | None"):
    """Install ``writer`` as the ambient telemetry channel for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = writer
    try:
        yield writer
    finally:
        _ACTIVE = previous


# ------------------------------------------------------------- tracer tee


class ProgressSink:
    """A tracer *sink* that forwards throttled phase progress to telemetry.

    Installed by :func:`~repro.exec.tasks.run_task` when an ambient
    :class:`TelemetryWriter` is active: the task's zero-clock tracer
    keeps building the payload from its in-memory event list exactly as
    before (payload bytes unchanged), while this sink — a pure observer
    of the same stream — counts spans and I/O rounds and emits a compact
    ``progress`` line every ``every`` events or ``interval`` real
    seconds, whichever comes first.  Top-level phase transitions
    (``partition`` / ``distribute`` / ``recurse`` / ``base-case`` at
    recursion level 0) are forwarded immediately as ``phase`` lines.
    """

    #: Phase span names worth announcing at recursion level 0.
    PHASES = ("partition", "distribute", "recurse", "base-case", "merge")

    def __init__(
        self,
        writer: TelemetryWriter,
        every: int = 2048,
        interval: float = 0.25,
        clock=time.monotonic,
    ):
        self.writer = writer
        self.every = max(1, int(every))
        self.interval = float(interval)
        self._clock = clock
        self._last_flush = clock()
        self._since_flush = 0
        # Memory telemetry rides the same lines (an RSS field on phase/
        # progress records) when REPRO_MEM_TELEMETRY is on; like the
        # timestamps, it never enters a payload.
        self._rss = memory_telemetry_enabled()
        self.rounds = 0
        self.spans = 0
        self.events = 0
        self.balance_rounds = 0
        self.max_balance_factor = None
        self.phase = ""

    def emit(self, event: dict) -> None:
        """Observe one trace event; maybe forward a progress line."""
        self.events += 1
        kind = event.get("ev")
        name = event.get("name", "")
        if kind == "event":
            if name in _ROUND_EVENTS:
                self.rounds += 1
            elif name == "balance.round":
                self.balance_rounds += 1
                factor = (event.get("attrs") or {}).get("max_balance_factor")
                if factor is not None:
                    self.max_balance_factor = factor
        elif kind == "begin":
            if name in self.PHASES and (
                (event.get("attrs") or {}).get("level", 0) == 0
            ):
                self.phase = name
                if self._rss:
                    self.writer.emit("phase", phase=name, rss_kb=peak_rss_kb())
                else:
                    self.writer.emit("phase", phase=name)
        elif kind == "end":
            self.spans += 1
        self._since_flush += 1
        if self._since_flush >= self.every or (
            self._clock() - self._last_flush >= self.interval
        ):
            self.flush()

    def flush(self) -> None:
        """Emit the cumulative progress counters as one line."""
        self._since_flush = 0
        self._last_flush = self._clock()
        fields = {
            "phase": self.phase,
            "rounds": self.rounds,
            "spans": self.spans,
            "balance_rounds": self.balance_rounds,
        }
        if self.max_balance_factor is not None:
            fields["max_balance_factor"] = self.max_balance_factor
        if self._rss:
            fields["rss_kb"] = peak_rss_kb()
        self.writer.emit("progress", **fields)

    def close(self) -> None:
        """Final progress flush (called by ``Tracer.close``)."""
        if self.events:
            self.flush()


# ------------------------------------------------------------- aggregation


def read_telemetry(path: str) -> list[dict]:
    """Load a telemetry stream; a torn final line (SIGKILL) is forgiven."""
    return read_trace(path, tolerate_truncated_tail=True)


def aggregate_progress(events: list[dict]) -> dict:
    """Fold a ``repro.progress/1`` stream into one live-state snapshot.

    Returns (additive schema)::

        {"schema": "repro.progress/1", "task": str, "cells": int,
         "done": int, "cached": int, "failed": int, "retried": int,
         "running": [{"key", "phase", "rounds", "elapsed_s"}, ...],
         "rounds": int, "records": int, "records_per_sec": float|None,
         "elapsed_s": float, "eta_s": float|None, "finished": bool}

    The ETA extrapolates from the content-hashed grid: cells remaining ×
    the mean wall-clock of the cells *executed* so far (cache hits are
    ~free and excluded from the mean); it is None until the first
    executed cell lands.
    """
    state = {
        "schema": PROGRESS_SCHEMA,
        "task": "",
        "grid": "",
        "cells": 0,
        "jobs": 1,
        "done": 0,
        "cached": 0,
        "failed": 0,
        "retried": 0,
        "rounds": 0,
        "records": 0,
        "records_per_sec": None,
        "elapsed_s": 0.0,
        "eta_s": None,
        "finished": False,
        "running": [],
    }
    peak_rss = 0
    mem_high_water = 0
    t_start = None
    t_last = None
    started: dict[str, dict] = {}  # key -> {"ts", "phase", "rounds"}
    cell_progress: dict[str, dict] = {}  # src -> latest progress fields
    exec_seconds: list[float] = []
    exec_records = 0
    exec_total_s = 0.0
    for ev in events:
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            t_start = ts if t_start is None else t_start
            t_last = ts
        kind = ev.get("ev")
        if kind == "sweep_start":
            state["task"] = ev.get("task", state["task"])
            state["grid"] = ev.get("grid", state["grid"])
            state["cells"] = ev.get("cells", state["cells"])
            state["jobs"] = ev.get("jobs", state["jobs"])
        elif kind == "cell_start":
            started[ev.get("key", "")] = {"ts": ts, "phase": "", "rounds": 0}
        elif kind in ("progress", "phase"):
            src = ev.get("src", "")
            cur = cell_progress.setdefault(src, {})
            cur.update({k: ev[k] for k in ("phase", "rounds") if k in ev})
            peak_rss = max(peak_rss, int(ev.get("rss_kb") or 0))
        elif kind == "cell_mem":
            peak_rss = max(peak_rss, int(ev.get("peak_rss_kb") or 0))
            mem_high_water = max(
                mem_high_water, int(ev.get("high_water_blocks") or 0)
            )
        elif kind == "cell_retry":
            state["retried"] += 1
        elif kind == "cell_finish":
            state["done"] += 1
            started.pop(ev.get("key", ""), None)
            if ev.get("cached"):
                state["cached"] += 1
            elif ev.get("failed"):
                state["failed"] += 1
            else:
                seconds = float(ev.get("seconds", 0.0))
                exec_seconds.append(seconds)
                exec_total_s += seconds
                exec_records += int(ev.get("records") or 0)
            state["rounds"] += int(ev.get("rounds") or 0)
        elif kind == "sweep_end":
            state["finished"] = True
    if t_start is not None and t_last is not None:
        state["elapsed_s"] = round(t_last - t_start, 3)
    if exec_total_s > 0 and exec_records:
        state["records_per_sec"] = round(exec_records / exec_total_s, 1)
    state["records"] = exec_records
    # Live rounds: completed cells' totals plus the running cells' latest.
    running = []
    for key, info in started.items():
        src = f"cell:{key[:16]}"
        progress = cell_progress.get(src, {})
        running.append({
            "key": key,
            "phase": progress.get("phase", ""),
            "rounds": progress.get("rounds", 0),
            "elapsed_s": (
                round(t_last - info["ts"], 3)
                if t_last is not None and info["ts"] is not None else None
            ),
        })
        state["rounds"] += int(progress.get("rounds") or 0)
    state["running"] = running
    if (
        not state["finished"]
        and exec_seconds
        and state["cells"]
    ):
        remaining = max(0, state["cells"] - state["done"])
        mean_s = sum(exec_seconds) / len(exec_seconds)
        state["eta_s"] = round(
            remaining * mean_s / max(1, state["jobs"]), 1
        )
    if peak_rss:
        state["peak_rss_kb"] = peak_rss
    if mem_high_water:
        state["mem_high_water_blocks"] = mem_high_water
    return state


def render_progress_line(state: dict) -> str:
    """One-line human rendering of an aggregated progress state."""
    cells = state.get("cells") or "?"
    parts = [
        f"{state.get('done', 0)}/{cells} cells",
        f"{state.get('cached', 0)} cached",
        f"{state.get('failed', 0)} failed",
    ]
    if state.get("retried"):
        parts.append(f"{state['retried']} retried")
    running = state.get("running") or []
    if running:
        head = running[0]
        phase = f" in {head['phase']}" if head.get("phase") else ""
        parts.append(f"{len(running)} running{phase}")
    if state.get("rounds"):
        parts.append(f"{state['rounds']} rounds")
    if state.get("records_per_sec"):
        parts.append(f"{state['records_per_sec']:g} rec/s")
    if state.get("peak_rss_kb"):
        parts.append(f"rss {state['peak_rss_kb'] / 1024:.0f} MiB")
    parts.append(f"elapsed {state.get('elapsed_s', 0.0):.1f}s")
    if state.get("eta_s") is not None:
        parts.append(f"eta {state['eta_s']:.1f}s")
    if state.get("finished"):
        parts.append("done")
    return "[sweep] " + " · ".join(parts)


def progress_tables(state: dict):
    """Aligned tables for ``repro top``: sweep summary + running cells."""
    from ..analysis.reporting import Table

    title = f"sweep progress · {state.get('task') or '?'}"
    if state.get("grid"):
        title += f" · grid {state['grid']}"
    t = Table(["metric", "value"], title=title)
    t.add("cells", state.get("cells", 0))
    t.add("done", state.get("done", 0))
    t.add("cached", state.get("cached", 0))
    t.add("failed", state.get("failed", 0))
    t.add("retried", state.get("retried", 0))
    t.add("I/O rounds", state.get("rounds", 0))
    t.add("records sorted", state.get("records", 0))
    if state.get("records_per_sec") is not None:
        t.add("records/sec", state["records_per_sec"])
    if state.get("peak_rss_kb"):
        t.add("peak RSS kB", state["peak_rss_kb"])
    if state.get("mem_high_water_blocks"):
        t.add("mem high-water blocks", state["mem_high_water_blocks"])
    t.add("elapsed s", state.get("elapsed_s", 0.0))
    if state.get("eta_s") is not None:
        t.add("eta s", state["eta_s"])
    t.add("finished", state.get("finished", False))
    tables = [t]
    running = state.get("running") or []
    if running:
        rt = Table(["cell key", "phase", "rounds", "elapsed s"],
                   title=f"running cells · {len(running)}")
        for cell in running:
            rt.add(
                cell["key"][:16], cell.get("phase") or "-",
                cell.get("rounds", 0),
                "-" if cell.get("elapsed_s") is None else cell["elapsed_s"],
            )
        tables.append(rt)
    return tables


# --------------------------------------------------------------- live view


class LiveProgressView:
    """In-place stderr progress renderer fed by tailing a telemetry file.

    A daemon thread re-reads the stream every ``interval`` seconds
    (telemetry files are small — cell lifecycle plus throttled progress
    lines), aggregates it, and redraws one status line: carriage-return
    in-place updates on a TTY, change-only appended lines otherwise (so
    piped/captured stderr stays readable).  Rendering never touches
    stdout — the sweep table stays byte-deterministic.
    """

    def __init__(self, path: str, stream=None, interval: float = 0.5):
        self.path = path
        self.stream = stream if stream is not None else sys.stderr
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_line = ""
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    # ------------------------------------------------------------- control

    def start(self) -> "LiveProgressView":
        """Begin tailing in a daemon thread."""
        self._thread = threading.Thread(
            target=self._run, name="repro-live-progress", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and finish the line with a newline (TTY only)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._refresh()  # final state
        if self._tty and self._last_line:
            self.stream.write("\n")
            self.stream.flush()

    def __enter__(self) -> "LiveProgressView":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------ internals

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                if self._refresh():
                    break  # sweep_end observed
            except Exception:  # pragma: no cover - rendering must not kill
                pass

    def _refresh(self) -> bool:
        """Re-read, re-render; returns True once the sweep has ended."""
        try:
            events = read_telemetry(self.path)
        except (OSError, ValueError):
            return False
        if not events:
            return False
        state = aggregate_progress(events)
        line = render_progress_line(state)
        if line != self._last_line:
            if self._tty:
                self.stream.write("\r\x1b[K" + line)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
            self._last_line = line
        return bool(state.get("finished"))
