"""Structured observability: metrics, tracing, and machine-readable reports.

The paper's *evaluation* is its cost accounting — parallel I/Os (Theorem
1), hierarchy memory/interconnect time (Theorems 2–3), and the Invariant
1/2 balance quantities (Theorem 4).  This package gives every machine
model and sort one shared instrumentation substrate:

* :class:`MetricsRegistry` — counters, gauges, and bucketed histograms
  with labeled child scopes (one scope per machine, per recursion level,
  per phase);
* :class:`Tracer` — nested spans (``span("distribute", level=1)``) and
  point events (``event("io.read", disks=4)``) carrying wall-clock *and*
  model-cost attribution, streamed to a JSONL sink so any run can be
  replayed or diffed offline;
* :class:`Observation` — the bundle (registry + tracer) that machines and
  sorts accept; ``Observation.disabled()`` is a shared no-op whose hooks
  cost one attribute check, so un-instrumented runs are bit-identical to
  the uninstrumented code path;
* :class:`RunReport` — metrics + spans merged into one schema-stable dict,
  rendered as an aligned table for humans or emitted as JSON
  (``repro sort --emit-json``), with :func:`summarize_trace` re-deriving
  the per-phase breakdown from a saved JSONL trace (``repro report``).

On top of the substrate sit three analysis engines (PR 4):

* :class:`TheoryAuditor` (:mod:`~repro.obs.audit`) — scores measured costs
  against the paper's bound expressions (Theorems 1–4, Invariants 1 & 2)
  as measured/bound constant-factor ratios, with live non-raising
  per-round invariant checks via the Balance engine's observer hook
  (``repro audit``);
* :func:`profile_trace` (:mod:`~repro.obs.profile`) — span self-time and
  critical-path aggregation, per-level and utilization timelines, and the
  I/O-round-trip hotspot table (``repro profile``);
* :func:`diff_runs` (:mod:`~repro.obs.diff`) — structural diffing of any
  two run reports / bench sidecars / summaries with relative thresholds,
  the CI regression gate (``repro diff``).

And the *live* leg (PR 6) — observability while and across runs:

* :mod:`~repro.obs.telemetry` — the ``repro.progress/1`` streaming
  progress channel (``repro sweep --live`` / ``repro top``), a
  line-buffered JSONL heartbeat the runner and worker phase spans append
  to mid-sweep, with payloads provably bit-identical telemetry on or off;
* :func:`export_chrome_trace` (:mod:`~repro.obs.export`) — convert any
  saved JSONL/gz trace to Chrome trace-event / Perfetto JSON
  (``repro export-trace``), so runs open in ui.perfetto.dev;
* :class:`BenchLedger` (:mod:`~repro.obs.ledger`) — the append-only,
  host-keyed ``repro.bench_series/1`` perf-trajectory ledger behind
  ``repro bench record`` / ``repro bench compare``.

And the *cross-run* analytics leg (PR 9) — observability across the
whole history of runs:

* :class:`RunHistory` (:mod:`~repro.obs.history`) — the append-friendly,
  host-keyed ``repro.run_index/1`` index over every run artifact
  (reports, audits, profiles, ledger points, bench sidecars, sweep
  stats, raw traces), behind ``repro history ingest|list|show|query``;
* :func:`attribute_runs` (:mod:`~repro.obs.attrib`) — the
  regression-attribution engine: per-span self-time deltas cross-checked
  against I/O-round counts and config deltas, ranked into a
  ``repro.attrib/1`` diagnosis (``repro attribute``, ``repro bench
  compare --attribute``);
* :class:`MemoryTelemetry` (:mod:`~repro.obs.memory`) — per-phase peak
  RSS sampling plus the store/machine arena gauges (high-water blocks,
  slab growth, ledger records), out-of-band like ``_plan_stats`` so
  payloads stay bit-identical telemetry on or off
  (``REPRO_MEM_TELEMETRY``);
* :func:`render_dashboard` (:mod:`~repro.obs.dashboard`) — the
  self-contained static-HTML perf dashboard over the history index
  (``repro dashboard``).

See ``docs/observability.md`` for the event schema and metric names.
"""

from .attrib import ATTRIB_SCHEMA, attribute_runs, render_attrib
from .audit import AUDIT_SCHEMA, AuditCheck, AuditReport, TheoryAuditor, record_cell_audit
from .dashboard import render_dashboard
from .diff import DIFF_SCHEMA, DiffEntry, DiffResult, diff_runs, flatten, load_doc
from .history import INDEX_SCHEMA, RunHistory
from .export import EXPORT_SCHEMA, export_chrome_trace, write_chrome_trace
from .ledger import (
    SERIES_SCHEMA,
    BenchLedger,
    compare_entries,
    make_entry,
)
from .memory import MemoryTelemetry, memory_telemetry_enabled, peak_rss_kb
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import PROFILE_SCHEMA, profile_trace, render_profile
from .report import RunReport, render_report, summarize_trace
from .telemetry import (
    PROGRESS_SCHEMA,
    LiveProgressView,
    ProgressSink,
    TelemetryWriter,
    activate_telemetry,
    active_telemetry,
    aggregate_progress,
    read_telemetry,
    render_progress_line,
)
from .tracer import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Observation,
    Tracer,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Observation",
    "JsonlSink",
    "ListSink",
    "read_trace",
    "RunReport",
    "render_report",
    "summarize_trace",
    "AuditCheck",
    "AuditReport",
    "TheoryAuditor",
    "record_cell_audit",
    "AUDIT_SCHEMA",
    "profile_trace",
    "render_profile",
    "PROFILE_SCHEMA",
    "DiffEntry",
    "DiffResult",
    "diff_runs",
    "flatten",
    "load_doc",
    "DIFF_SCHEMA",
    "PROGRESS_SCHEMA",
    "TelemetryWriter",
    "activate_telemetry",
    "active_telemetry",
    "ProgressSink",
    "read_telemetry",
    "aggregate_progress",
    "render_progress_line",
    "LiveProgressView",
    "EXPORT_SCHEMA",
    "export_chrome_trace",
    "write_chrome_trace",
    "SERIES_SCHEMA",
    "BenchLedger",
    "make_entry",
    "compare_entries",
    "INDEX_SCHEMA",
    "RunHistory",
    "ATTRIB_SCHEMA",
    "attribute_runs",
    "render_attrib",
    "MemoryTelemetry",
    "memory_telemetry_enabled",
    "peak_rss_kb",
    "render_dashboard",
]
