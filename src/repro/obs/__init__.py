"""Structured observability: metrics, tracing, and machine-readable reports.

The paper's *evaluation* is its cost accounting — parallel I/Os (Theorem
1), hierarchy memory/interconnect time (Theorems 2–3), and the Invariant
1/2 balance quantities (Theorem 4).  This package gives every machine
model and sort one shared instrumentation substrate:

* :class:`MetricsRegistry` — counters, gauges, and bucketed histograms
  with labeled child scopes (one scope per machine, per recursion level,
  per phase);
* :class:`Tracer` — nested spans (``span("distribute", level=1)``) and
  point events (``event("io.read", disks=4)``) carrying wall-clock *and*
  model-cost attribution, streamed to a JSONL sink so any run can be
  replayed or diffed offline;
* :class:`Observation` — the bundle (registry + tracer) that machines and
  sorts accept; ``Observation.disabled()`` is a shared no-op whose hooks
  cost one attribute check, so un-instrumented runs are bit-identical to
  the uninstrumented code path;
* :class:`RunReport` — metrics + spans merged into one schema-stable dict,
  rendered as an aligned table for humans or emitted as JSON
  (``repro sort --emit-json``), with :func:`summarize_trace` re-deriving
  the per-phase breakdown from a saved JSONL trace (``repro report``).

See ``docs/observability.md`` for the event schema and metric names.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import RunReport, render_report, summarize_trace
from .tracer import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Observation,
    Tracer,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Observation",
    "JsonlSink",
    "ListSink",
    "read_trace",
    "RunReport",
    "render_report",
    "summarize_trace",
]
