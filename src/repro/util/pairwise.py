"""Pairwise-independent probability space for Luby-style derandomization.

Section 4.2 of the paper derandomizes ``Fast-Partial-Match`` using the
techniques of Luby [Luba, Lubb]: the randomized matcher's analysis uses only
pairwise independence, so its random choices can be drawn from the small
sample space ``{ h_{a,b}(u) = (a·u + b) mod p : (a, b) ∈ Z_p × Z_p }`` over a
prime ``p``, which has only ``p²`` points.  Some point of the space must
achieve at least the expected number of matches; the paper finds it
"exhaustively in parallel" using its ``H = (H')³`` processors — here we
enumerate the same space.

The family is exactly pairwise independent when ``a`` ranges over all of
``Z_p`` (including 0) and values are taken in ``Z_p``; mapping into a smaller
range ``[0, m)`` by ``mod m`` keeps near-uniformity, and the matcher's
correctness test (Theorem 5) is asserted empirically over the whole space in
the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["next_prime", "PairwiseSpace"]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def next_prime(n: int) -> int:
    """Smallest prime ``>= n``."""
    if n <= 2:
        return 2
    candidate = n | 1  # next odd >= n
    while not _is_prime(candidate):
        candidate += 2
    return candidate


class PairwiseSpace:
    """The sample space ``{(a, b) ∈ Z_p²}`` of hash functions ``h(u) = (a·u+b) mod p``.

    Parameters
    ----------
    universe:
        Inputs ``u`` are in ``[0, universe)``; ``p`` is the smallest prime
        ``>= universe``.
    """

    def __init__(self, universe: int):
        if universe < 1:
            raise ValueError("universe must be positive")
        self.universe = int(universe)
        self.p = next_prime(max(2, universe))

    @property
    def size(self) -> int:
        """Number of sample points, ``p²``."""
        return self.p * self.p

    def points(self):
        """Iterate over all ``(a, b)`` sample points, ``a`` varying slowest."""
        for a in range(self.p):
            for b in range(self.p):
                yield (a, b)

    def evaluate(self, a: int, b: int, u: np.ndarray) -> np.ndarray:
        """``h_{a,b}(u) = (a·u + b) mod p`` for a vector of inputs."""
        u = np.asarray(u, dtype=np.int64)
        return (a * u + b) % self.p

    def evaluate_all(self, u: np.ndarray) -> np.ndarray:
        """Evaluate every sample point at once.

        Returns an array of shape ``(p, p, len(u))`` where entry
        ``[a, b, i] = (a·u[i] + b) mod p``.  This mirrors running the
        ``(H')²`` copies of the matcher in parallel as the paper does.
        """
        u = np.asarray(u, dtype=np.int64)
        a = np.arange(self.p, dtype=np.int64)[:, None, None]
        b = np.arange(self.p, dtype=np.int64)[None, :, None]
        return (a * u[None, None, :] + b) % self.p
