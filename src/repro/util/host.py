"""Normalized host-metadata capture for benchmark points and the ledger.

Every artifact that records a performance number — ``BENCH_*.json``
points, the ``benchmarks/results/*.json`` sidecars, and the
``repro.bench_series/1`` perf ledger — needs to say *where* it was
measured, because wall-clock numbers are only comparable on the same
host.  Before this helper each writer captured its own ad-hoc dict, and
the full ``platform.platform()`` string drifted between files whenever
the kernel was patched (e.g. ``...-v19`` vs ``...-v20``) even though the
hardware was identical.

:func:`capture_host` is the one shared capture: the full platform string
is kept as *information*, while :func:`host_key` digests only the fields
that define comparability — OS family, architecture, Python
``major.minor``, and the usable core count — so two measurements on the
same box with different kernel patch levels share a key, and diff gates
can match baselines by ``host_key`` instead of fragile string equality.
"""

from __future__ import annotations

import hashlib
import os
import platform

__all__ = ["capture_host", "host_key", "peak_rss_kb", "usable_cores"]


def usable_cores() -> int:
    """Cores the scheduler will actually grant this process.

    ``sched_getaffinity`` (Linux) respects cgroup/taskset restriction;
    elsewhere fall back to the raw CPU count.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def peak_rss_kb() -> int:
    """Lifetime peak resident-set size of this process, in kibibytes.

    Reads ``getrusage(RUSAGE_SELF).ru_maxrss`` — a monotone high-water
    mark the kernel keeps for free, so sampling it perturbs nothing
    (the memory-telemetry design rule).  Linux reports the value in KiB,
    macOS in bytes; both are normalized to KiB.  Returns 0 where the
    ``resource`` module is unavailable (non-POSIX).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - macOS only
        rss //= 1024
    return int(rss)


def capture_host() -> dict:
    """The normalized host-metadata dict every perf artifact embeds.

    Keys (additive evolution only)::

        {"key": <host_key digest>,        # comparability identity
         "system": "Linux", "machine": "x86_64",
         "python": "3.12.1", "usable_cores": 8,
         "platform": "<full platform.platform() string — informational>"}
    """
    info = {
        "system": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "usable_cores": usable_cores(),
        "platform": platform.platform(),
    }
    info["key"] = host_key(info)
    # Stable key order with the identity first (nicer JSON diffs).
    return {"key": info["key"], **{k: info[k] for k in (
        "system", "machine", "python", "usable_cores", "platform")}}


def host_key(info: dict | None = None) -> str:
    """A short digest identifying the host *class* a measurement ran on.

    Deliberately excludes the full platform string (kernel patch levels
    drift) and the Python patch version; includes what actually moves
    perf numbers: OS family, architecture, interpreter ``major.minor``,
    and the usable core count.
    """
    if info is None:
        info = {
            "system": platform.system(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "usable_cores": usable_cores(),
        }
    python_mm = ".".join(str(info["python"]).split(".")[:2])
    basis = "|".join([
        str(info["system"]), str(info["machine"]),
        python_mm, str(info["usable_cores"]),
    ])
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:12]
