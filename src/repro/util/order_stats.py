"""Order statistics with the paper's median convention.

Footnote 3 of the paper: "We use the convention that the median is always the
⌈D/2⌉-th smallest element, rather than the convention in statistics that it
is the average of the two middle elements if D is even."

:func:`paper_median` implements exactly that.  :func:`median_of_medians` is
the deterministic linear-time selection of Blum–Floyd–Pratt–Rivest–Tarjan
[BFP], which the paper cites for its deterministic selection steps; we keep
an operational version (useful for step-counted runs) alongside the NumPy
``partition`` fast path used everywhere performance matters.
"""

from __future__ import annotations

import numpy as np

__all__ = ["paper_median", "select_kth", "median_of_medians"]


def paper_median(values: np.ndarray) -> int:
    """The ⌈n/2⌉-th smallest element (1-indexed), per the paper's footnote 3.

    For ``n = 4`` this is the 2nd smallest; for ``n = 5`` the 3rd smallest.
    """
    values = np.asarray(values)
    n = values.shape[-1]
    if n == 0:
        raise ValueError("median of empty array")
    k = (n + 1) // 2  # ⌈n/2⌉, 1-indexed rank
    return select_kth(values, k)


def select_kth(values: np.ndarray, k: int) -> int:
    """The k-th smallest element, 1-indexed, via ``np.partition`` (O(n))."""
    values = np.asarray(values)
    n = values.shape[-1]
    if not 1 <= k <= n:
        raise ValueError(f"rank k={k} out of range for n={n}")
    if values.ndim == 1:
        return int(np.partition(values, k - 1)[k - 1])
    raise ValueError("select_kth expects a 1-D array")


def paper_median_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise paper median of a 2-D matrix (vectorized).

    Used by ``ComputeAux`` (Algorithm 4): ``m_b`` is the paper-median of row
    ``b`` of the histogram matrix.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    n = matrix.shape[1]
    k = (n + 1) // 2  # 1-indexed
    return np.partition(matrix, k - 1, axis=1)[:, k - 1]


def median_of_medians(values, k: int) -> int:
    """Deterministic linear-time selection of the k-th smallest (1-indexed).

    Classic BFPRT with groups of 5.  Operational (pure Python) so tests can
    confirm the deterministic pipeline the paper relies on; not used on hot
    paths.
    """
    vals = list(values)
    n = len(vals)
    if not 1 <= k <= n:
        raise ValueError(f"rank k={k} out of range for n={n}")
    return _mom_select(vals, k)


def _mom_select(vals: list, k: int) -> int:
    while True:
        n = len(vals)
        if n <= 10:
            vals.sort()
            return vals[k - 1]
        medians = [sorted(vals[i : i + 5])[(min(5, n - i) - 1) // 2] for i in range(0, n, 5)]
        pivot = _mom_select(medians, (len(medians) + 1) // 2)
        lo = [v for v in vals if v < pivot]
        eq = [v for v in vals if v == pivot]
        hi = [v for v in vals if v > pivot]
        if k <= len(lo):
            vals = lo
        elif k <= len(lo) + len(eq):
            return pivot
        else:
            k -= len(lo) + len(eq)
            vals = hi
