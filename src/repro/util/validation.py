"""Correctness validators shared by tests, examples, and benchmarks.

A sort on a simulated machine is correct when (a) the output keys are
non-decreasing with rid breaking ties (the paper's composite order) and
(b) the output is a permutation of the input records.
"""

from __future__ import annotations

import numpy as np

from ..records import RECORD_DTYPE, composite_keys

__all__ = ["is_sorted", "is_permutation", "assert_sorted", "assert_is_permutation"]


def is_sorted(records: np.ndarray) -> bool:
    """True when records are non-decreasing in the composite (key, rid) order."""
    if records.size <= 1:
        return True
    ck = composite_keys(records)
    return bool(np.all(ck[:-1] <= ck[1:]))


def is_permutation(output: np.ndarray, original: np.ndarray) -> bool:
    """True when ``output`` contains exactly the records of ``original``.

    Because rids are unique within an input, comparing the sorted rid
    sequences and checking key agreement per rid suffices.
    """
    if output.size != original.size:
        return False
    if output.dtype != RECORD_DTYPE or original.dtype != RECORD_DTYPE:
        raise TypeError("expected record arrays")
    order_out = np.argsort(output["rid"], kind="stable")
    order_in = np.argsort(original["rid"], kind="stable")
    return bool(
        np.array_equal(output["rid"][order_out], original["rid"][order_in])
        and np.array_equal(output["key"][order_out], original["key"][order_in])
    )


def assert_sorted(records: np.ndarray, context: str = "") -> None:
    """Raise AssertionError with a helpful message when not sorted."""
    if not is_sorted(records):
        ck = composite_keys(records)
        bad = int(np.flatnonzero(ck[:-1] > ck[1:])[0])
        raise AssertionError(
            f"{context or 'output'} not sorted: inversion at index {bad}: "
            f"{records[bad]} > {records[bad + 1]}"
        )


def assert_is_permutation(output: np.ndarray, original: np.ndarray, context: str = "") -> None:
    """Raise AssertionError when output is not a permutation of the input."""
    if not is_permutation(output, original):
        raise AssertionError(
            f"{context or 'output'} is not a permutation of the input "
            f"(sizes {output.size} vs {original.size})"
        )
