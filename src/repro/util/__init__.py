"""Shared utilities: order statistics, pairwise hashing, validation, host capture."""

from .host import capture_host, host_key, peak_rss_kb, usable_cores
from .order_stats import paper_median, select_kth, median_of_medians
from .pairwise import PairwiseSpace, next_prime
from .validation import (
    assert_is_permutation,
    assert_sorted,
    is_sorted,
    is_permutation,
)

__all__ = [
    "capture_host",
    "host_key",
    "peak_rss_kb",
    "usable_cores",
    "paper_median",
    "select_kth",
    "median_of_medians",
    "PairwiseSpace",
    "next_prime",
    "assert_is_permutation",
    "assert_sorted",
    "is_sorted",
    "is_permutation",
]
