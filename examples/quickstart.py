#!/usr/bin/env python3
"""Quickstart: external-sort 50,000 records on 8 parallel disks.

Runs Balance Sort (Nodine & Vitter, SPAA'93) on the simulated parallel disk
model, verifies the output, and prints the measured parallel-I/O count next
to the Theorem 1 lower-bound expression — the paper's headline claim is
that the two stay within a constant factor of each other, deterministically.

Run:  python examples/quickstart.py
"""

from repro import ParallelDiskMachine, balance_sort_pdm, workloads
from repro.analysis import bounds
from repro.analysis.reporting import Table
from repro.core.streams import peek_run
from repro.util import assert_is_permutation, assert_sorted


def main() -> None:
    # A machine with M=1024 records of memory, 4-record blocks, 8 disks —
    # tiny numbers so the structure is visible; every ratio below is
    # scale-free.
    machine = ParallelDiskMachine(memory=1024, block=4, disks=8)
    data = workloads.uniform(50_000, seed=7)

    result = balance_sort_pdm(machine, data)

    out = peek_run(result.storage, result.output)
    assert_sorted(out, "quickstart output")
    assert_is_permutation(out, data, "quickstart output")
    print(f"sorted {result.n_records:,} records — output verified\n")

    bound = bounds.sort_io_bound(result.n_records, machine.M, machine.B, machine.D)
    t = Table(["metric", "value"], title="Balance Sort on the parallel disk model")
    t.add("records (N)", result.n_records)
    t.add("memory (M) / block (B) / disks (D)", f"{machine.M} / {machine.B} / {machine.D}")
    t.add("parallel I/Os measured", result.total_ios)
    t.add("Theorem 1 bound  (N/DB)·log(N/B)/log(M/B)", round(bound, 1))
    t.add("measured / bound", round(result.total_ios / bound, 2))
    t.add("recursion depth", result.recursion_depth)
    t.add("blocks rebalanced by Fast-Partial-Match", result.blocks_swapped)
    t.add("matching invocations (all deterministic)", result.match_calls)
    t.add("worst bucket balance factor (Theorem 4 ≈ 2)", round(result.max_balance_factor, 2))
    t.add("CPU work charged (ops)", result.cpu["work"])
    t.print()

    print(
        "The measured/bound ratio is a small constant — rerun with other N\n"
        "and it stays flat: that is Theorem 1's optimality, reproduced."
    )


if __name__ == "__main__":
    main()
