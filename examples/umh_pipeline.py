#!/usr/bin/env python3
"""The Uniform Memory Hierarchy (Figure 3c) — buses, blocks, and P-UMH sort.

Two views of the UMH model [ACF] that the paper's Section 3 extends:

1. the *bus-level machine* (`repro.hierarchies.umh.UMH`): level ``l`` holds
   ``α·ρ^l`` blocks of ``ρ^l`` records; the bus between levels ``l`` and
   ``l+1`` moves one level-``l`` block in ``ρ^l/b(l)`` time, all buses in
   parallel.  We walk a block down from level 3 to the base, showing the
   per-bus time accounting and the pipelining effect (elapsed time = the
   busiest bus, not the sum);
2. the *P-UMH sort*: Balance Sort runs unchanged on H UMH hierarchies via
   the streaming-cost model — the Section 3 claim that the paper's
   techniques derandomize the [ViN] P-UMH algorithms.

Run:  python examples/umh_pipeline.py
"""

import numpy as np

from repro import ParallelHierarchies, balance_sort_hierarchy, workloads
from repro.analysis.reporting import Table
from repro.core.streams import peek_run
from repro.hierarchies import UMH
from repro.records import make_records
from repro.util import assert_is_permutation, assert_sorted


def bus_level_walk() -> None:
    """Move a level-3 block to the base, one sub-block split at a time."""
    u = UMH(rho=2, alpha=2, levels=5)
    payload = make_records(np.arange(8, dtype=np.uint64))  # a level-3 block
    u.put_block(3, 0, payload)

    # Split the block downwards: 3 -> 2 -> 1 -> 0 (follow sub-block 0).
    u.transfer(bus=2, lower_frame=0, upper_frame=0, sub_index=0, direction="down")
    u.transfer(bus=1, lower_frame=0, upper_frame=0, sub_index=0, direction="down")
    u.transfer(bus=0, lower_frame=0, upper_frame=0, sub_index=0, direction="down")

    t = Table(["bus", "block size moved", "busy time"],
              title="Bus activity moving one record path from level 3 to base")
    for bus in range(3):
        t.add(bus, u.levels[bus].block_size, u.bus_time[bus])
    t.print()
    print(f"elapsed (busiest bus, buses overlap): {u.time}")
    print(f"total bus work (if serialized):       {u.total_bus_work}")
    print(f"base level now holds record key {int(u.get_block(0, 0)['key'][0])}\n")


def pumh_sort() -> None:
    """Deterministic Balance Sort on the P-UMH machine."""
    machine = ParallelHierarchies(64, model="umh", interconnect="pram")
    data = workloads.zipf_like(8000, seed=42)
    res = balance_sort_hierarchy(machine, data)
    out = peek_run(res.storage, res.output)
    assert_sorted(out)
    assert_is_permutation(out, data)

    t = Table(["metric", "value"], title="Balance Sort on P-UMH (H=64, Zipf-skewed input)")
    t.add("records", res.n_records)
    t.add("model time (memory + interconnect)", round(res.total_time))
    t.add("parallel memory steps", res.parallel_steps)
    t.add("matching invocations (deterministic)", res.match_calls)
    t.add("matcher fallbacks", res.match_fallbacks)
    t.add("worst bucket balance factor", round(res.max_balance_factor, 2))
    t.print()
    print(
        "Section 3's claim, operational: the same deterministic balancing\n"
        "engine drives the UMH hierarchies — no randomization anywhere."
    )


if __name__ == "__main__":
    bus_level_walk()
    pumh_sort()
