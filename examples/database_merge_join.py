#!/usr/bin/env python3
"""External sort-merge join on parallel disks — a database scenario.

The paper's introduction motivates external sorting with exactly this kind
of workload (large transaction systems such as the TWA reservation system
[GiS], RAID-style disk arrays [PGK]).  Here two relations that do not fit
in memory — an `orders` table and a `payments` table keyed by order id —
are each externally sorted with Balance Sort and then merge-joined with a
single streaming pass, the textbook sort-merge join.

What to look at in the output:

* both sorts are deterministic — rerunning gives identical I/O counts;
* the join phase costs one extra streaming pass over each relation;
* the skewed payment distribution (a few hot orders, Zipf-like) does not
  degrade the disk balance: the location matrices keep every bucket
  readable at ~full parallelism (Theorem 4).

Run:  python examples/database_merge_join.py
"""

import numpy as np

from repro import ParallelDiskMachine, balance_sort_pdm
from repro.analysis.reporting import Table
from repro.core.streams import peek_run
from repro.records import make_records
from repro.util import assert_sorted


def build_relations(n_orders: int, n_payments: int, seed: int):
    """Synthetic orders (unique ids) and payments (skewed toward hot orders)."""
    rng = np.random.default_rng(seed)
    order_ids = rng.permutation(n_orders).astype(np.uint64)
    # payments reference orders with Zipf-ish skew: a few orders get many
    hot = rng.zipf(1.6, size=n_payments) % n_orders
    payment_order_ids = hot.astype(np.uint64)
    return make_records(order_ids), make_records(payment_order_ids)


def merge_join_count(sorted_a: np.ndarray, sorted_b: np.ndarray) -> int:
    """Count join matches between two key-sorted relations (streaming)."""
    a_keys = sorted_a["key"]
    b_keys = sorted_b["key"]
    # For each distinct key in a, multiply the occurrence counts.
    keys_a, counts_a = np.unique(a_keys, return_counts=True)
    keys_b, counts_b = np.unique(b_keys, return_counts=True)
    common, ia, ib = np.intersect1d(keys_a, keys_b, return_indices=True)
    return int((counts_a[ia] * counts_b[ib]).sum())


def external_sort(machine: ParallelDiskMachine, relation: np.ndarray, label: str):
    result = balance_sort_pdm(machine, relation)
    out = peek_run(result.storage, result.output)
    assert_sorted(out, label)
    return result, out


def main() -> None:
    orders, payments = build_relations(n_orders=20_000, n_payments=40_000, seed=11)

    m1 = ParallelDiskMachine(memory=1024, block=4, disks=8)
    res_orders, sorted_orders = external_sort(m1, orders, "orders")

    m2 = ParallelDiskMachine(memory=1024, block=4, disks=8)
    res_payments, sorted_payments = external_sort(m2, payments, "payments")

    matches = merge_join_count(sorted_orders, sorted_payments)
    # the join's own I/O cost: one streaming read of each sorted relation
    join_ios = -(-orders.shape[0] // (m1.D * m1.B)) + -(
        -payments.shape[0] // (m2.D * m2.B)
    )

    t = Table(["phase", "records", "parallel I/Os", "balance factor"],
              title="Sort-merge join on 8 parallel disks")
    t.add("sort orders", orders.shape[0], res_orders.total_ios,
          round(res_orders.max_balance_factor, 2))
    t.add("sort payments (Zipf-skewed)", payments.shape[0], res_payments.total_ios,
          round(res_payments.max_balance_factor, 2))
    t.add("merge-join streaming pass", orders.shape[0] + payments.shape[0], join_ios, "-")
    t.print()
    print(f"join produced {matches:,} (order, payment) matches")
    print(
        "\nSkew check: the payments relation is heavily skewed, yet its "
        f"balance factor is {res_payments.max_balance_factor:.2f} — the "
        "deterministic balancing keeps every bucket spread across the disks."
    )


if __name__ == "__main__":
    main()
