#!/usr/bin/env python3
"""Watch the balancing happen: the X and A matrices, round by round.

This example feeds an adversarial stream (every incoming block belongs to
the bucket that *wants* to pile onto one disk) through the Balance engine
and prints the histogram matrix ``X`` and auxiliary matrix ``A`` at a few
checkpoints.  Things to notice:

* ``A`` never shows a value above 1 after a round completes (Invariant 2);
* every row of ``X`` stays within +1 of its median (Theorem 4's mechanism);
* the swap counter ticks exactly when the adversarial pattern would
  otherwise have skewed a bucket — the matching at work.

Run:  python examples/balance_trace.py
"""

import numpy as np

from repro import workloads
from repro.analysis.trace import BalanceTracer, render_matrix
from repro.core.balance import BalanceEngine
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys


def main() -> None:
    machine = ParallelDiskMachine(memory=65536, block=4, disks=8)
    storage = VirtualDisks(machine, 4)  # H' = 4 channels
    data = workloads.adversarial_striping(4000, seed=5, period=4)

    ck = np.sort(composite_keys(data))
    pivots = ck[np.linspace(0, ck.size - 1, 5).astype(int)[1:-1]]  # S = 4

    engine = BalanceEngine(storage, pivots, matcher="derandomized")
    tracer = BalanceTracer.attach(engine)

    # Feed exactly one track (H'·VB records) at a time: with the lane-striped
    # adversarial input every round then tries to pin bucket i to channel i —
    # the worst case for a naive placer.
    checkpoints = [2, 8, 32]
    chunk = storage.n_virtual * storage.virtual_block_size
    for i in range(0, data.shape[0], chunk):
        part = data[i : i + chunk]
        machine.mem_acquire(part.shape[0])
        engine.feed(part)
        engine.run_rounds(drain_below=0)
        while checkpoints and tracer.n_rounds >= checkpoints[0]:
            cp = checkpoints.pop(0)
            snap = tracer.snapshots[cp - 1]
            print(f"after round {snap.round_index} "
                  f"(swaps so far: {snap.blocks_swapped}):")
            print("X (blocks of bucket b on channel h):")
            print(render_matrix(snap.histogram))
            print("A = max(0, X - row median):")
            print(render_matrix(snap.auxiliary))
            print()
    engine.flush()

    summary = tracer.summary()
    print("trace summary:")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    print(
        "\nThe adversarial stream tried to put every bucket on one channel;\n"
        f"after {summary['rounds']} rounds and {summary['total_swaps']} swaps the worst\n"
        f"bucket reads back within {summary['worst_balance_factor']:.2f}x of optimal "
        "(Theorem 4 guarantees ~2x).\n\n"
        "Note the columns can still be lopsided (the matcher may park every\n"
        "swap on one channel): the median rule only promises each BUCKET is\n"
        "readable in ~2x the optimal parallel rounds — exactly what Theorem 4\n"
        "claims, no more.  This input drives the bound to its boundary."
    )


if __name__ == "__main__":
    main()
