#!/usr/bin/env python3
"""The balance technique as a general load balancer (beyond sorting).

The paper's conclusion: "we expect our balance technique to be quite useful
as large-scale parallel memories are built, not only for sorting but also
for other load-balancing applications on parallel disks and parallel memory
hierarchies."

This example uses the histogram/auxiliary-matrix machinery directly — no
sorting — to place streams of variable-rate *file writes* onto a disk
array.  Each "file" is a bucket; each full block of a file must land on
some disk; reading a file back later wants its blocks spread evenly.  We
compare three placement policies on an adversarial write trace in which a
few files produce most of the blocks in bursts:

* ``input-order``  — write each block to the next disk in arrival order
  (what a naive striping controller does per stream);
* ``random``       — uniform random disk per block ([ViSa]-style);
* ``balanced``     — the paper's matrices + Fast-Partial-Match.

The metric is Theorem 4's balance factor: (parallel reads needed to fetch
the file) / (optimal reads).  The deterministic balancer guarantees ≤ ~2.

Run:  python examples/load_balancing_raid.py
"""

import numpy as np

from repro import workloads
from repro.analysis.reporting import Table
from repro.core.balance import BalanceEngine
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys, make_records


def write_trace(n_files: int, n_blocks: int, seed: int) -> np.ndarray:
    """File id per block write, bursty: long runs of the same hot file."""
    rng = np.random.default_rng(seed)
    ids = []
    while len(ids) < n_blocks:
        f = int(rng.zipf(1.3)) % n_files
        burst = int(rng.integers(1, 12))
        ids.extend([f] * burst)
    return np.array(ids[:n_blocks])


def run_policy(policy: str, file_ids: np.ndarray, n_disks: int, vb: int, seed: int):
    """Place one block per trace entry; return worst per-file balance factor."""
    machine = ParallelDiskMachine(memory=64 * vb, block=vb // 2, disks=2 * n_disks)
    storage = VirtualDisks(machine, n_disks)
    n_files = int(file_ids.max()) + 1

    if policy == "balanced":
        # Encode "file id" as the sort key so the engine's partitioner puts
        # each block in its file's bucket: pivots at 1, 2, ..., n_files-1.
        pivots_records = make_records(np.arange(1, n_files, dtype=np.uint64))
        pivots = composite_keys(pivots_records)
        # force pivot rids to 0 so every key k maps to bucket k
        pivots = (np.arange(1, n_files, dtype=np.uint64) << np.uint64(24))
        engine = BalanceEngine(storage, pivots, matcher="derandomized")
        for f in file_ids:
            block = make_records(np.full(vb, f, dtype=np.uint64))
            machine.mem_acquire(vb)
            engine.feed(block)
            engine.run_rounds(drain_below=2 * n_disks)
        engine.flush()
        x = engine.matrices.X
    else:
        rng = np.random.default_rng(seed)
        x = np.zeros((n_files, n_disks), dtype=np.int64)
        cursor = 0
        last_f = -1
        for f in file_ids:
            if policy == "random":
                d = int(rng.integers(0, n_disks))
            else:  # input-order: per-stream striping restarts at disk 0
                if f != last_f:
                    cursor = 0
                    last_f = int(f)
                d = cursor % n_disks
                cursor += 1
            x[f, d] += 1

    factors = []
    for f in range(n_files):
        total = x[f].sum()
        if total == 0:
            continue
        factors.append(x[f].max() / -(-total // n_disks))
    return max(factors), float(np.mean(factors))


def main() -> None:
    n_disks, vb = 8, 8
    trace = write_trace(n_files=24, n_blocks=3000, seed=33)

    t = Table(
        ["policy", "worst file balance factor", "mean factor"],
        title=f"Placing {trace.size} block writes of 24 files on {n_disks} disks",
    )
    for policy in ["input-order", "random", "balanced"]:
        worst, mean = run_policy(policy, trace, n_disks, vb, seed=34)
        t.add(policy, round(worst, 2), round(mean, 2))
    t.print()
    print(
        "input-order placement lets bursty files pile onto few disks;\n"
        "randomization helps on average but has a tail; the deterministic\n"
        "balancer guarantees every file reads back within ~2x of optimal\n"
        "(Theorem 4) — and it is a worst-case guarantee, not an expectation."
    )


if __name__ == "__main__":
    main()
