#!/usr/bin/env python3
"""Sorting on parallel memory hierarchies: P-HMM and P-BT side by side.

Section 4 of the paper runs the same Balance Sort on hierarchical memory
models: H memory hierarchies whose access cost grows with the address
(``f(x) = log x`` or ``x^α``), their base levels joined by a PRAM or a
hypercube.  This example sorts one dataset on six machine variants and
prints the model-time decomposition, showing three of the paper's
qualitative claims:

* a polynomial cost function (``x^1``) dwarfs a logarithmic one;
* the BT model's block-transfer "touch" pipeline (Section 4.4) makes
  streaming dramatically cheaper than record-at-a-time HMM access for
  ``f = x^0.5``;
* a hypercube interconnect pays the ``T(H) = log H (log log H)²`` Sharesort
  factor over the PRAM's ``log H`` per base-level sort.

Run:  python examples/memory_hierarchy_sort.py
"""

from repro import ParallelHierarchies, balance_sort_hierarchy, workloads
from repro.analysis.reporting import Table
from repro.core.streams import peek_run
from repro.hierarchies import LogCost, PowerCost
from repro.util import assert_is_permutation, assert_sorted

VARIANTS = [
    ("P-HMM  f=log x   PRAM", "hmm", LogCost(), "pram"),
    ("P-HMM  f=log x   hypercube", "hmm", LogCost(), "hypercube"),
    ("P-HMM  f=x^0.5   PRAM", "hmm", PowerCost(alpha=0.5), "pram"),
    ("P-HMM  f=x^1     PRAM", "hmm", PowerCost(alpha=1.0), "pram"),
    ("P-BT   f=x^0.5   PRAM", "bt", PowerCost(alpha=0.5), "pram"),
    ("P-BT   f=x^0.5   hypercube", "bt", PowerCost(alpha=0.5), "hypercube"),
]


def main() -> None:
    h = 64  # hierarchies/processors; H' = H^(1/3) = 4 virtual hierarchies
    data = workloads.uniform(6000, seed=21)

    t = Table(
        ["machine", "memory time", "interconnect", "total", "steps", "swaps"],
        title=f"Balance Sort of {data.shape[0]} records on H={h} hierarchies",
    )
    for label, model, cost, interconnect in VARIANTS:
        machine = ParallelHierarchies(h, model=model, cost_fn=cost, interconnect=interconnect)
        res = balance_sort_hierarchy(machine, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out, label)
        assert_is_permutation(out, data, label)
        t.add(
            label,
            round(res.memory_time),
            round(res.interconnect_time),
            round(res.total_time),
            res.parallel_steps,
            res.blocks_swapped,
        )
    t.print()
    print(
        "Same algorithm, same bookkeeping matrices, six machines — the\n"
        "engine only sees 'channels'; the cost models differ (Section 3's\n"
        "portability claim)."
    )


if __name__ == "__main__":
    main()
