"""E7 — Theorem 5 and Lemma 1 (Fast-Partial-Match).

Paper claims: the derandomized matcher always matches at least ⌈H'/4⌉ of
the overloaded channels (Theorem 5), the randomized one matches ≥ H'/4 in
expectation with O(1) picking rounds (Lemma 1), and the pairwise-
independent sample space (size p²) suffices for the derandomization.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.core.matching import (
    derandomized_partial_match,
    greedy_match,
    randomized_partial_match,
)
from _harness import random_valid_instance, report, run_once

HP_SWEEP = [4, 8, 16, 32, 64]
TRIALS = 60


def sweep():
    rng = np.random.default_rng(10)
    rows = []
    for hp in HP_SWEEP:
        target = -(-hp // 4)
        der_sizes, der_points, ran_sizes, ran_rounds, greedy_sizes, us = [], [], [], [], [], []
        for _ in range(TRIALS):
            inst = random_valid_instance(rng, hp)
            us.append(inst.size)
            der = derandomized_partial_match(inst)
            der_sizes.append(der.size)
            der_points.append(der.sample_points_tried)
            ran = randomized_partial_match(inst, rng)
            ran_sizes.append(ran.size)
            ran_rounds.append(ran.picking_rounds)
            greedy_sizes.append(greedy_match(inst).size)
            assert not der.used_fallback
            assert der.size >= min(inst.size, target)
        rows.append(
            {
                "H'": hp,
                "target ⌈H'/4⌉": target,
                "derand min": min(der_sizes),
                "derand mean": round(np.mean(der_sizes), 2),
                "points tried": round(np.mean(der_points), 1),
                "rand mean": round(np.mean(ran_sizes), 2),
                "rand rounds": round(np.mean(ran_rounds), 2),
                "greedy (=|U|)": round(np.mean(greedy_sizes), 2),
            }
        )
    return rows


@pytest.mark.benchmark(group="e7")
def test_e7_fast_partial_match(benchmark):
    rows = run_once(benchmark, sweep)
    t = Table(
        ["H'", "target ⌈H'/4⌉", "derand min", "derand mean", "points tried",
         "rand mean", "rand rounds", "greedy (=|U|)"],
        title=f"E7  Fast-Partial-Match over {TRIALS} random valid instances per H'",
    )
    for r in rows:
        t.add_dict(r)
    report("e7_matching", t,
           notes="Claims: derand min ≥ target always (Theorem 5, asserted "
                 "per instance); randomized picking rounds O(1) (Lemma 1); "
                 "greedy matches all of U (degree ≥ ⌈H'/2⌉ > |U|−1).")
    for r in rows:
        assert r["derand min"] >= min(r["target ⌈H'/4⌉"], 1)
        assert r["rand rounds"] < 6  # constant, independent of H'
    # Lemma 1 in aggregate: the randomized matcher's mean is within a
    # conflict-loss constant of min(|U|, ⌈H'/4⌉) (the lemma's exact claim
    # is for |U| = ⌊H'/2⌋; the instance mix here varies |U|)
    for r in rows:
        assert r["rand mean"] >= 0.8 * min(r["greedy (=|U|)"], r["target ⌈H'/4⌉"])


@pytest.mark.benchmark(group="e7")
def test_e7_sample_space_is_quadratic(benchmark):
    """The derandomization's search space is p² = O(H'²) points."""
    from repro.util.pairwise import PairwiseSpace

    def run():
        return [(hp, PairwiseSpace(hp).size) for hp in HP_SWEEP]

    rows = run_once(benchmark, run)
    t = Table(["H'", "sample points p²"], title="E7b  derandomization space size")
    for hp, size in rows:
        t.add(hp, size)
    report("e7b_space", t,
           notes="The paper evaluates all points at once on its H=(H')³ "
                 "processors; sequentially they are p² ≤ (2H')² trials.")
    for hp, size in rows:
        assert size <= (2 * hp + 2) ** 2
