"""E2 — Theorem 1 (internal processing on a PRAM interconnect).

Paper claim: with a P-processor PRAM, Balance Sort's internal processing
time is ``Θ((N/P)·log N)`` — simultaneously with the optimal I/O count.
Reproduction: (a) total CPU *work* grows as ``N log N`` (independent of P);
(b) charged parallel *time* scales down with P (Brent) until the depth
terms dominate.
"""

import pytest

from repro import ParallelDiskMachine, balance_sort_pdm, workloads
from repro.analysis import bounds
from repro.analysis.optimality import loglog_slope
from repro.analysis.reporting import Table

from _harness import report, run_once

P_SWEEP = [1, 4, 16, 64]
N_SWEEP = [8_000, 32_000]
M, B, D = 512, 4, 8


def sweep():
    rows = []
    for n in N_SWEEP:
        for p in P_SWEEP:
            machine = ParallelDiskMachine(memory=M, block=B, disks=D, processors=p)
            data = workloads.uniform(n, seed=2)
            res = balance_sort_pdm(machine, data, check_invariants=False)
            bound = bounds.cpu_work_bound(n, p)
            rows.append(
                {
                    "N": n,
                    "P": p,
                    "work": res.cpu["work"],
                    "time": res.cpu["time"],
                    "bound (N/P)logN": round(bound),
                    "time/bound": round(res.cpu["time"] / bound, 2),
                }
            )
    return rows


@pytest.mark.benchmark(group="e2")
def test_e2_cpu_time_vs_theorem1(benchmark):
    rows = run_once(benchmark, sweep)

    t = Table(["N", "P", "work", "time", "bound (N/P)logN", "time/bound"],
              title="E2  internal processing vs Theorem 1's (N/P)·log N")
    for r in rows:
        t.add_dict(r)
    report("e2_cpu_work", t,
           notes="Claims: work is P-independent and ~N log N; time/bound "
                 "bounded while P-fold speedup holds (Brent scheduling).")

    for n in N_SWEEP:
        sub = [r for r in rows if r["N"] == n]
        works = [r["work"] for r in sub]
        # work identical across P (the algorithm is deterministic)
        assert max(works) == min(works)
        # charged parallel time shrinks with P
        times = [r["time"] for r in sub]
        assert times[0] > times[1] > times[2]
        # near-linear speedup from P=1 to P=4
        assert times[0] / times[1] > 2.5
    # work grows ~ N log N: log-log slope close to the bound's
    p1 = [r for r in rows if r["P"] == 1]
    slope_m = loglog_slope([r["N"] for r in p1], [r["work"] for r in p1])
    slope_b = loglog_slope(
        [r["N"] for r in p1], [bounds.cpu_work_bound(r["N"], 1) for r in p1]
    )
    assert abs(slope_m - slope_b) < 0.25
