"""E4 — Theorem 2 (sorting time on P-HMM hierarchies).

Paper claims: on H PRAM-interconnected HMM hierarchies Balance Sort is
optimal — ``Θ((N/H)^{α+1} + (N/H)·log N)`` for ``f = x^α`` and the
polylogarithmic form for ``f = log x``; on a hypercube the same holds up to
the ``T(H)`` term.  Reproduction: sweep N per cost function, check the
measured/bound ratio band, and show the hypercube interconnect premium.
"""

import pytest

from repro import ParallelHierarchies, balance_sort_hierarchy, workloads
from repro.analysis import bounds
from repro.analysis.reporting import Table
from repro.hierarchies import LogCost, PowerCost

from _harness import report, run_once

H = 64
N_SWEEP = [3_000, 6_000, 12_000, 24_000]
COSTS = [("log", None), ("x^0.5", 0.5), ("x^1", 1.0), ("x^2", 2.0)]


def bound_for(n, alpha):
    if alpha is None:
        return bounds.theorem2_log_bound(n, H)
    return bounds.theorem2_power_bound(n, H, alpha)


def sweep():
    rows = []
    for label, alpha in COSTS:
        cost = LogCost() if alpha is None else PowerCost(alpha=alpha)
        for n in N_SWEEP:
            machine = ParallelHierarchies(H, model="hmm", cost_fn=cost, interconnect="pram")
            res = balance_sort_hierarchy(
                machine, workloads.uniform(n, seed=4), check_invariants=False
            )
            rows.append(
                {
                    "f": label,
                    "N": n,
                    "time": round(res.total_time),
                    "bound": round(bound_for(n, alpha)),
                    "ratio": round(res.total_time / bound_for(n, alpha), 2),
                }
            )
    return rows


@pytest.mark.benchmark(group="e4")
def test_e4_phmm_time_vs_theorem2(benchmark):
    rows = run_once(benchmark, sweep)
    t = Table(["f", "N", "time", "bound", "ratio"],
              title=f"E4  P-HMM sorting time vs Theorem 2, H={H}, PRAM interconnect")
    for r in rows:
        t.add_dict(r)
    report("e4_phmm", t,
           notes="Claim: ratio band bounded per cost function (Theorem 2 "
                 "optimality); polynomial f dominated by the (N/H)^(α+1) term.")

    for label, _ in COSTS:
        ratios = [r["ratio"] for r in rows if r["f"] == label]
        assert max(ratios) / min(ratios) < 4.0, f"ratio drifts for f={label}"
    # the alpha=2 machine must be far slower than the log machine at max N
    t_log = [r["time"] for r in rows if r["f"] == "log"][-1]
    t_sq = [r["time"] for r in rows if r["f"] == "x^2"][-1]
    assert t_sq > 10 * t_log


@pytest.mark.benchmark(group="e4")
def test_e4_hypercube_premium(benchmark):
    """Theorem 2's hypercube variant: interconnect time grows by ~T(H)/log H."""

    def run():
        rows = []
        for inter in ["pram", "hypercube"]:
            machine = ParallelHierarchies(H, cost_fn=LogCost(), interconnect=inter)
            res = balance_sort_hierarchy(
                machine, workloads.uniform(8_000, seed=5), check_invariants=False
            )
            rows.append((inter, res.memory_time, res.interconnect_time, res.total_time))
        return rows

    rows = run_once(benchmark, run)
    t = Table(["interconnect", "memory time", "interconnect time", "total"],
              title="E4b  PRAM vs hypercube interconnect, f=log x")
    for r in rows:
        t.add(r[0], round(r[1]), round(r[2]), round(r[3]))
    expected = bounds.T_H(H) / bounds.T_H(H, interconnect="pram")
    measured = rows[1][2] / rows[0][2]
    report("e4b_hypercube", t,
           notes=f"T(H)/log H = {expected:.2f}; measured interconnect "
                 f"ratio = {measured:.2f} (memory time identical).")
    assert rows[0][1] == rows[1][1]  # memory side unchanged
    assert 0.5 * expected < measured < 2.0 * expected
