"""E10 — ablations of the design choices DESIGN.md calls out.

* **Matcher ablation** — derandomized (Theorem 5) vs randomized
  (Algorithm 7) vs greedy vs the Section 6 min-cost conjecture: identical
  correctness, near-identical I/O, different machinery cost.  The paper's
  own remark that "the randomized algorithm resulting from the randomized
  matching is even simpler to implement in practice" is visible in the
  sample-points column.
* **Auxiliary-matrix rule ablation** — the paper's median rule vs the [Arg]
  twice-the-even-share rule: both keep every bucket within factor ~2.
* **Partial-striping ablation** — sweeping D' between 1 (full striping of
  writes) and D (no striping): I/O and balance trade-off.
"""

import numpy as np
import pytest

from repro import ParallelDiskMachine, balance_sort_pdm, workloads
from repro.analysis.reporting import Table
from repro.core.aux_variants import ArgeBalanceMatrices, compute_aux_arge
from repro.core.balance import BalanceEngine
from repro.core.matrices import compute_aux
from repro.pdm import VirtualDisks
from repro.records import composite_keys

from _harness import report, run_once

N = 16_000


def pivots_for(records, s):
    ck = np.sort(composite_keys(records))
    ranks = np.linspace(0, ck.size - 1, s + 1).astype(int)[1:-1]
    return ck[ranks]


@pytest.mark.benchmark(group="e10")
def test_e10_matcher_ablation(benchmark):
    def run():
        rows = []
        data = workloads.adversarial_striping(N, seed=16, period=4)
        for matcher in ["derandomized", "randomized", "greedy", "mincost"]:
            m = ParallelDiskMachine(memory=512, block=4, disks=8)
            res = balance_sort_pdm(
                m, data, matcher=matcher, rng=np.random.default_rng(17),
                check_invariants=True,
            )
            rows.append(
                {
                    "matcher": matcher,
                    "ios": res.total_ios,
                    "swaps": res.blocks_swapped,
                    "unprocessed": res.blocks_unprocessed,
                    "balance": round(res.max_balance_factor, 2),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    t = Table(["matcher", "ios", "swaps", "unprocessed", "balance"],
              title=f"E10a  matcher ablation, adversarial input, N={N}")
    for r in rows:
        t.add_dict(r)
    report("e10a_matchers", t,
           notes="Claim: all four matchers preserve the guarantee; I/O "
                 "within a few % of each other (the matcher changes *which* "
                 "channel, not how many blocks move).")
    ios = [r["ios"] for r in rows]
    assert max(ios) / min(ios) < 1.15
    assert all(r["balance"] <= 2.5 for r in rows)


@pytest.mark.benchmark(group="e10")
def test_e10_aux_rule_ablation(benchmark):
    """Median rule vs [Arg] rule on identical placement traces."""

    def run():
        rows = []
        data = workloads.adversarial_bucket_skew(N, seed=18)
        piv = pivots_for(data, 8)
        for label, matrices_cls in [("median (paper)", None), ("[Arg] 2x-even", ArgeBalanceMatrices)]:
            m = ParallelDiskMachine(memory=65536, block=4, disks=16)
            storage = VirtualDisks(m, 8)
            engine = BalanceEngine(storage, piv, matcher="greedy", check_invariants=False)
            if matrices_cls is not None:
                engine.matrices = matrices_cls(engine.n_buckets, engine.n_channels)
            for i in range(0, data.shape[0], 512):
                part = data[i : i + 512]
                m.mem_acquire(part.shape[0])
                engine.feed(part)
                engine.run_rounds(drain_below=16)
            engine.flush()
            rows.append(
                {
                    "aux rule": label,
                    "swaps": engine.stats.blocks_swapped,
                    "unprocessed": engine.stats.blocks_unprocessed,
                    "balance": round(engine.matrices.max_balance_factor(), 2),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    t = Table(["aux rule", "swaps", "unprocessed", "balance"],
              title="E10b  auxiliary-matrix rule ablation (Section 4.1 / [Arg])")
    for r in rows:
        t.add_dict(r)
    report("e10b_aux_rule", t,
           notes="Claim: both rules keep every bucket within ~factor 2 "
                 "(the [Arg] rule rebalances more lazily).")
    assert all(r["balance"] <= 2.6 for r in rows)


@pytest.mark.benchmark(group="e10")
def test_e10_pivot_selection_ablation(benchmark):
    """Sorting-based vs [BFP] selection-based pivot extraction.

    Both read one streaming pass and pick the same sample ranks, so the
    pivots (hence every downstream I/O) are identical; only the CPU charge
    differs — O(|C| log |C|) vs O(S·|C|).
    """
    from repro.core.partition import (
        pdm_partition_elements,
        selection_partition_elements,
    )
    from repro.core.streams import load_ordered_run
    from repro.pdm import ParallelDiskMachine as PDM

    def run():
        rows = []
        for s in [4, 8, 16]:
            m1 = PDM(memory=1024, block=4, disks=8)
            st1 = VirtualDisks(m1, 2)
            data = workloads.uniform(8000, seed=20)
            r1 = load_ordered_run(st1, data)
            p1 = pdm_partition_elements(m1, st1, r1, s, memoryload=512)

            m2 = PDM(memory=1024, block=4, disks=8)
            st2 = VirtualDisks(m2, 2)
            r2 = load_ordered_run(st2, data)
            p2 = selection_partition_elements(m2, st2, r2, s, memoryload=512)
            rows.append(
                {
                    "S": s,
                    "pivots equal": bool(np.array_equal(p1, p2)),
                    "ios equal": m1.stats.total_ios == m2.stats.total_ios,
                    "cpu sort-based": m1.cpu.work,
                    "cpu select-based": m2.cpu.work,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    t = Table(["S", "pivots equal", "ios equal", "cpu sort-based", "cpu select-based"],
              title="E10d  pivot extraction: sample sorting vs [BFP] selection")
    for r in rows:
        t.add_dict(r)
    report("e10d_pivot_selection", t,
           notes="Claim: identical pivots and I/O; only the CPU charge "
                 "differs (the toolbox choice the paper's [BFP] citation buys).")
    assert all(r["pivots equal"] and r["ios equal"] for r in rows)


@pytest.mark.benchmark(group="e10")
def test_e10_partial_striping_sweep(benchmark):
    """D' between 1 and D: the paper's H' = H^(1/3) sits in the flat region."""

    def run():
        rows = []
        data = workloads.uniform(N, seed=19)
        for vd in [1, 2, 4, 8]:
            m = ParallelDiskMachine(memory=512, block=4, disks=8)
            res = balance_sort_pdm(
                m, data, virtual_disks=vd, check_invariants=False
            )
            rows.append(
                {
                    "D'": vd,
                    "virtual block": 8 // vd * 4,
                    "ios": res.total_ios,
                    "swaps": res.blocks_swapped,
                    "balance": round(res.max_balance_factor, 2),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    t = Table(["D'", "virtual block", "ios", "swaps", "balance"],
              title="E10c  partial-striping sweep (D=8)")
    for r in rows:
        t.add_dict(r)
    report("e10c_striping", t,
           notes="D'=1 is full striping (no balancing needed, none possible); "
                 "growing D' adds balancing work but the I/O count stays in "
                 "one band — the paper's D^(1/3) choice is about matching "
                 "*processor* budget, not I/O.")
    ios = [r["ios"] for r in rows]
    assert max(ios) / min(ios) < 1.5
    assert all(r["balance"] <= 2.5 for r in rows)
