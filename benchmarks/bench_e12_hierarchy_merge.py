"""E12 — merge-based sorting loses on hierarchies (the Greed Sort remark).

Paper: Greed Sort — merge-based — "is known to be optimal only for the
parallel disk models and not for hierarchical memories" (Section 3); and
generally "merge sort combined with disk striping is deterministic, but the
number of I/Os used can be much larger than optimal" (Section 1).  On a
hierarchy the structural reason is that an O(1)-way merge streams the whole
dataset once per level — ``Θ(log(N/H))`` full-cost streams — while the
distribution recursion's per-level cost shrinks with the (repositioned)
subproblem footprint.

Reproduction at laptop scale: the merge sort's ratio to the Theorem 2 bound
*grows* with N (the extra log factor) while Balance Sort's stays flat, and
the merge/balance time ratio rises steadily toward the crossover (the
constant-factor lead merge starts with is eaten at a log rate).
"""

import pytest

from repro import ParallelHierarchies, balance_sort_hierarchy, workloads
from repro.analysis import bounds
from repro.analysis.reporting import Table
from repro.baselines import hierarchy_merge_sort
from repro.hierarchies import PowerCost

from _harness import report, run_once

H = 64
N_SWEEP = [4_000, 16_000, 64_000]
ALPHA = 1.0


def sweep():
    rows = []
    for n in N_SWEEP:
        data = workloads.uniform(n, seed=25)
        bound = bounds.theorem2_power_bound(n, H, ALPHA)

        m1 = ParallelHierarchies(H, cost_fn=PowerCost(alpha=ALPHA))
        merge = hierarchy_merge_sort(m1, data)

        m2 = ParallelHierarchies(H, cost_fn=PowerCost(alpha=ALPHA))
        balance = balance_sort_hierarchy(m2, data, check_invariants=False)

        rows.append(
            {
                "N": n,
                "merge time": round(merge.total_time),
                "merge/bound": round(merge.total_time / bound, 2),
                "balance time": round(balance.total_time),
                "balance/bound": round(balance.total_time / bound, 2),
                "merge/balance": round(merge.total_time / balance.total_time, 3),
            }
        )
    return rows


@pytest.mark.benchmark(group="e12")
def test_e12_merge_vs_distribution_on_hierarchies(benchmark):
    rows = run_once(benchmark, sweep)
    t = Table(
        ["N", "merge time", "merge/bound", "balance time", "balance/bound", "merge/balance"],
        title=f"E12  striped merge sort vs Balance Sort on P-HMM f=x^{ALPHA}, H={H}",
    )
    for r in rows:
        t.add_dict(r)

    mb = [r["merge/balance"] for r in rows]
    # crude crossover extrapolation: ratio grows ~linearly in log N
    import math

    if mb[-1] < 1 and mb[-1] > mb[0]:
        per_quad = mb[-1] - mb[0]  # growth over the 16x sweep (2 quadruplings)
        quads_needed = (1 - mb[-1]) / (per_quad / 2)
        crossover = N_SWEEP[-1] * 4**quads_needed
        note_x = f"extrapolated merge/balance crossover ≈ N = {crossover:,.0f}"
    else:
        note_x = "merge/balance ≥ 1 within the sweep"
    report("e12_hierarchy_merge", t,
           notes="Claims: merge/bound grows with N (the extra log(N/H) "
                 "factor), balance/bound flat (Theorem 2 optimality); "
                 + note_x + ".")

    merge_ratio = [r["merge/bound"] for r in rows]
    balance_ratio = [r["balance/bound"] for r in rows]
    # merge's ratio to the optimal bound grows across the sweep...
    assert merge_ratio[-1] > 1.5 * merge_ratio[0]
    # ...while balance sort's stays in a tight band
    assert max(balance_ratio) / min(balance_ratio) < 1.8
    # and the merge/balance gap closes monotonically (the log factor at work)
    assert mb[0] < mb[1] < mb[2]
