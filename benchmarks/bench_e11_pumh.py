"""E11 — Section 3's P-UMH claim.

Paper: "Our techniques can also be used to transform the randomized P-UMH
algorithms of [ViN] into deterministic ones with our PRAM interconnection."
Reproduction: Balance Sort runs unchanged on the P-UMH machine (the
simplified streaming-cost UMH model of
:class:`repro.hierarchies.cost.UMHCost`; the bus-level UMH machine is
exercised by the unit suite) — deterministically, with the
``Θ((N/H)·log N)``-shape time the [ViN] bounds take, and the same
balance guarantee as on every other model.
"""

import pytest

from repro import ParallelHierarchies, balance_sort_hierarchy, workloads
from repro.analysis import bounds
from repro.analysis.optimality import loglog_slope
from repro.analysis.reporting import Table
from repro.core.streams import peek_run
from repro.util import assert_is_permutation, assert_sorted

from _harness import report, run_once

H = 64
N_SWEEP = [3_000, 6_000, 12_000, 24_000]


def bound(n):
    # (N/H)·log N — the [ViN]-shape reference for nice bandwidths
    return (n / H) * bounds.paper_log(n)


def sweep():
    rows = []
    for n in N_SWEEP:
        machine = ParallelHierarchies(H, model="umh", interconnect="pram")
        data = workloads.uniform(n, seed=24)
        res = balance_sort_hierarchy(machine, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)
        rows.append(
            {
                "N": n,
                "time": round(res.total_time),
                "bound (N/H)logN": round(bound(n)),
                "ratio": round(res.total_time / bound(n), 2),
                "balance": round(res.max_balance_factor, 2),
                "fallbacks": res.match_fallbacks,
            }
        )
    return rows


@pytest.mark.benchmark(group="e11")
def test_e11_pumh_deterministic_sort(benchmark):
    rows = run_once(benchmark, sweep)
    t = Table(["N", "time", "bound (N/H)logN", "ratio", "balance", "fallbacks"],
              title=f"E11  deterministic Balance Sort on P-UMH, H={H}")
    for r in rows:
        t.add_dict(r)
    report("e11_pumh", t,
           notes="Claim: the same deterministic engine sorts on P-UMH; the "
                 "growth exponent tracks the (N/H)·log N [ViN] shape to "
                 "within the recursion's polylog (the sweep straddles a "
                 "recursion-depth increase), and the Theorem 4 balance "
                 "guarantee holds.")
    ratios = [r["ratio"] for r in rows]
    assert max(ratios) / min(ratios) < 3.0
    slope = loglog_slope(N_SWEEP, [r["time"] for r in rows])
    slope_b = loglog_slope(N_SWEEP, [bound(n) for n in N_SWEEP])
    assert abs(slope - slope_b) < 0.5
    assert all(r["balance"] <= 2.5 for r in rows)
    assert all(r["fallbacks"] == 0 for r in rows)
