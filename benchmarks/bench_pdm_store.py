"""PDM block-store benchmark: the arena backend vs the legacy dict store.

Records the tentpole trajectory point for the slab-allocated
:class:`~repro.pdm.store.ArenaBlockStore` in ``BENCH_pdm_store.json`` at
the repo root:

* **store microbench** — raw write/read/free batch throughput of the two
  backends in isolation (the substrate-only view of the change);
* **E1 macro grid** — the Theorem-1 sweep (9 ``sort_pdm`` cells), timed
  serially per cell under ``REPRO_PDM_STORE=arena`` and ``=dict``, with
  backend runs interleaved and min-of-``repeats`` per cell to damp host
  noise.  Cell results are asserted bit-identical across backends — a
  speedup that changed the measurements would be a bug, not a win;
* **baselines** — the pre-arena numbers this PR is measured against:
  the PR-2 recorded E1 serial wall-clock (19.533 s, from
  ``BENCH_exec_runner.json``; different-day host conditions) and the
  PR-2 code re-timed on *this* host at the time the arena landed
  (25.317 s — the honest same-host comparison).

The pytest entry point (``pytest benchmarks/bench_pdm_store.py -m
bench``) runs a reduced smoke grid and enforces a **3× regression
threshold** against the recorded point: generous enough for noisy CI
hosts, tight enough to catch the store regressing to pre-arena
per-block-dict behaviour (>10× on the microbench).

Run directly (``python benchmarks/bench_pdm_store.py``) to re-record the
full point.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
import pytest

from repro.util import capture_host

sys.path.insert(0, os.path.dirname(__file__))

from bench_e1_pdm_io import GRID  # noqa: E402

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_pdm_store.json")

#: Pre-arena reference points (see module docstring for provenance).
PR2_RECORDED_E1_SERIAL_S = 19.533
PR2_SAME_HOST_E1_SERIAL_S = 25.317
PR2_SAME_HOST_E1_ROWS = [
    {"n": 4000, "disks": 4, "seconds": 0.306},
    {"n": 16000, "disks": 4, "seconds": 1.895},
    {"n": 64000, "disks": 4, "seconds": 10.894},
    {"n": 4000, "disks": 8, "seconds": 0.194},
    {"n": 16000, "disks": 8, "seconds": 1.229},
    {"n": 64000, "disks": 8, "seconds": 5.739},
    {"n": 4000, "disks": 16, "seconds": 0.124},
    {"n": 16000, "disks": 16, "seconds": 0.801},
    {"n": 64000, "disks": 16, "seconds": 4.134},
]

#: Reduced grid for the CI perf-smoke (the two largest cells dominate the
#: full grid's wall-clock and would make nightly noise hurt the most).
SMOKE_GRID = [c for c in GRID if c["n"] <= 16_000]


# ---------------------------------------------------------- microbench


def store_microbench(batches: int = 2000, width: int = 16, block: int = 4) -> dict:
    """Raw batched write→read→free throughput, per backend, in isolation."""
    from repro.pdm.store import make_store
    from repro.records import RECORD_DTYPE

    out = {}
    for name in ("arena", "dict"):
        store = make_store(name, width, block)
        disks = np.arange(width, dtype=np.int64)
        data = np.zeros((width, block), dtype=RECORD_DTYPE)
        t0 = time.perf_counter()
        for i in range(batches):
            slots = np.full(width, i, dtype=np.int64)
            store.write_batch(disks, slots, data)
        for i in range(batches):
            slots = np.full(width, i, dtype=np.int64)
            store.read_batch(disks, slots)
        for i in range(batches):
            slots = np.full(width, i, dtype=np.int64)
            store.free_batch(disks, slots)
        elapsed = time.perf_counter() - t0
        out[name] = {
            "seconds": round(elapsed, 4),
            "blocks_per_sec": int(3 * batches * width / elapsed),
        }
    out["arena_vs_dict"] = round(
        out["dict"]["seconds"] / out["arena"]["seconds"], 2
    )
    return out


# ------------------------------------------------------------ macro grid


def _time_cell(cell: dict, store: str) -> tuple[float, dict]:
    """One serial ``sort_pdm`` run under the given backend; returns (s, result)."""
    from repro.exec import run_task

    prev = os.environ.get("REPRO_PDM_STORE")
    os.environ["REPRO_PDM_STORE"] = store
    try:
        t0 = time.perf_counter()
        payload = run_task("sort_pdm", dict(cell))
        return time.perf_counter() - t0, payload["result"]
    finally:
        if prev is None:
            os.environ.pop("REPRO_PDM_STORE", None)
        else:
            os.environ["REPRO_PDM_STORE"] = prev


def grid_comparison(grid: list[dict], repeats: int = 2) -> dict:
    """Time every cell under both backends, interleaved, min-of-``repeats``.

    Interleaving (arena, dict, arena, dict, ... per cell) means a load
    spike on the host hits both backends roughly equally instead of
    poisoning one column; min-of-N then discards the spikes.
    """
    rows = []
    for cell in grid:
        best = {"arena": float("inf"), "dict": float("inf")}
        results = {}
        for _ in range(repeats):
            for store in ("arena", "dict"):
                elapsed, result = _time_cell(cell, store)
                best[store] = min(best[store], elapsed)
                results[store] = result
        assert results["arena"] == results["dict"], (
            f"backends disagree on {cell}"
        )
        rows.append(
            {
                "n": cell["n"],
                "disks": cell["disks"],
                "arena_s": round(best["arena"], 3),
                "dict_s": round(best["dict"], 3),
                "arena_vs_dict": round(best["dict"] / best["arena"], 2),
            }
        )
    total_arena = round(sum(r["arena_s"] for r in rows), 3)
    total_dict = round(sum(r["dict_s"] for r in rows), 3)
    return {
        "rows": rows,
        "total_arena_s": total_arena,
        "total_dict_s": total_dict,
        "bit_identical": True,
    }


def measure(repeats: int = 2) -> dict:
    """The full benchmark point: microbench + E1 grid + baselines."""
    micro = store_microbench()
    macro = grid_comparison(GRID, repeats=repeats)
    total = macro["total_arena_s"]
    return {
        "schema": "repro.bench_point/1",
        "name": "pdm_store",
        "description": "Arena block store vs legacy dict store: raw batch "
                       "throughput and the E1 serial grid",
        "host": capture_host(),
        "microbench": micro,
        "e1_grid": macro,
        "baselines": {
            "pr2_recorded_serial_s": PR2_RECORDED_E1_SERIAL_S,
            "pr2_same_host_serial_s": PR2_SAME_HOST_E1_SERIAL_S,
            "pr2_same_host_rows": PR2_SAME_HOST_E1_ROWS,
            "speedup_vs_recorded": round(PR2_RECORDED_E1_SERIAL_S / total, 2),
            "speedup_vs_same_host": round(PR2_SAME_HOST_E1_SERIAL_S / total, 2),
        },
        "notes": (
            "Baselines: 'recorded' is PR-2's BENCH_exec_runner.json E1 serial "
            "number (different-day host conditions); 'same_host' is PR-2's "
            "code re-timed on this host when the arena landed — the honest "
            "comparison. This point was re-recorded after the fused-"
            "distribute work (whole-round gather/scatter I/O plans, the "
            "H'=2 closed-form rebalance, and scalar-mirror matrix upkeep); "
            "the per-PR trajectory — including the same-host pre-PR re-"
            "timing each fused point is gated against — lives in "
            "BENCH_ledger.jsonl (series e1-grid / e1-grid-unfused) and "
            "docs/performance.md. The microbench compares against the dict "
            "store *as it stands today* — it too has batched entry points, "
            "so the substrate gap understates the distance from the "
            "original per-block dict-of-dicts path; the end-to-end "
            "arena-vs-dict column (same code, store swapped) isolates the "
            "substrate's share of the grid win. This point was last "
            "re-recorded after PR-8 (columnar event journal + the "
            "optional compiled round inner loop); it times the default "
            "python backend — the compiled backend's grid trajectory "
            "lives in BENCH_ledger.jsonl (series e1-grid, min-of-3 "
            "methodology) and docs/performance.md. Remaining time is "
            "per-logical-round Python dispatch (feed/round bookkeeping, "
            "columnar appends, charge paths) that the payload-bit-"
            "identity contract requires to fire once per round. Cell "
            "results are asserted bit-identical between backends in "
            "every timed run."
        ),
    }


def record(path: str = BENCH_PATH, repeats: int = 2) -> dict:
    """Measure and persist the benchmark point."""
    point = measure(repeats=repeats)
    with open(path, "w") as fh:
        json.dump(point, fh, indent=2)
        fh.write("\n")
    return point


# ------------------------------------------------------------ perf smoke


@pytest.mark.bench
@pytest.mark.benchmark(group="pdm_store")
def test_pdm_store_perf_smoke(benchmark):
    """Nightly guard: arena must stay within 3x of the recorded point.

    Runs the reduced smoke grid (n <= 16000) once per backend, asserts
    bit-identical results, and gates the measured arena total against the
    recorded ``BENCH_pdm_store.json`` smoke-equivalent total through the
    :mod:`repro.obs.diff` engine — ``threshold=2.0`` allows a relative
    increase of 2.0, i.e. measured ≤ 3 × recorded (the same 3x window the
    ad-hoc assert used: wide enough for shared-CI noise, narrow enough to
    catch the execution layer sliding back toward pre-arena wall-clocks).
    The diff result doubles as the failure message, naming exactly which
    totals moved and by how much.
    """
    from repro.obs import diff_runs

    macro = benchmark.pedantic(
        grid_comparison, args=(SMOKE_GRID,), kwargs={"repeats": 1},
        rounds=1, iterations=1,
    )
    assert macro["bit_identical"]
    micro = store_microbench(batches=500)
    assert micro["arena_vs_dict"] > 1.0, (
        "arena store slower than the dict store at raw batch throughput"
    )
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as fh:
            recorded = json.load(fh)
        reference = sum(
            r["arena_s"] for r in recorded["e1_grid"]["rows"]
            if r["n"] <= 16_000
        )
        verdict = diff_runs(
            {"smoke": {"total_arena_s": round(reference, 3)}},
            {"smoke": {"total_arena_s": macro["total_arena_s"]}},
            threshold=2.0,
        )
        assert verdict.ok, (
            "perf regression past the 3x window: "
            + "; ".join(
                f"{e.path}: {e.a} -> {e.b} (rel {e.rel_delta:.2f} > {e.threshold})"
                for e in verdict.regressions
            )
        )


if __name__ == "__main__":
    point = record()
    print(json.dumps(point, indent=2))
