"""E9 — the Algorithm 2 / [ViSa] partition-element guarantee.

Paper claim: choosing every ⌊log N⌋-th element with ``G·log N ≤ N/S``
(hierarchies), or every ``⌊memoryload/4S⌋``-th element per sorted
memoryload (disks), yields ``0 < N_b < 2N/S`` for every bucket b — on any
input, including heavy duplication and adversarial skew.
"""

import numpy as np
import pytest

from repro import ParallelHierarchies, workloads
from repro.analysis.reporting import Table
from repro.core.partition import pdm_partition_elements, validate_bucket_sizes
from repro.core.sort_hierarchy import choose_s_and_g
from repro.core.streams import load_ordered_run
from repro.hierarchies import VirtualHierarchies
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys

from _harness import report, run_once

WORKLOADS = ["uniform", "zipf", "few_distinct", "sorted", "adversarial_bucket_skew", "gaussian"]
S_SWEEP = [4, 8, 16]
N = 20_000


def sweep():
    rows = []
    for wl in WORKLOADS:
        data = workloads.by_name(wl, N, seed=15)
        for s in S_SWEEP:
            machine = ParallelDiskMachine(memory=1024, block=4, disks=8)
            storage = VirtualDisks(machine, 2)
            run = load_ordered_run(storage, data)
            pivots = pdm_partition_elements(machine, storage, run, s, memoryload=512)
            counts = np.bincount(
                np.searchsorted(pivots, composite_keys(data), side="right"), minlength=s
            )
            rows.append(
                {
                    "workload": wl,
                    "S": s,
                    "max bucket": int(counts.max()),
                    "2N/S bound": int(2 * N / s),
                    "ratio": round(validate_bucket_sizes(counts, N, s), 3),
                    "empty buckets": int((counts == 0).sum()),
                }
            )
    return rows


@pytest.mark.benchmark(group="e9")
def test_e9_bucket_bound(benchmark):
    rows = run_once(benchmark, sweep)
    t = Table(["workload", "S", "max bucket", "2N/S bound", "ratio", "empty buckets"],
              title=f"E9  bucket sizes vs the 2N/S guarantee, N={N} ([ViSa] sampling)")
    for r in rows:
        t.add_dict(r)
    report("e9_partition", t,
           notes="Claim: max bucket < 2N/S (ratio < 1) on every workload — "
                 "duplicates handled by the composite-key distinctness trick.")
    assert all(r["ratio"] <= 1.0 for r in rows)


@pytest.mark.benchmark(group="e9")
def test_e9_choose_s_and_g_constraint(benchmark):
    """The hierarchy parameter choice satisfies Algorithm 2's precondition."""

    def run():
        rows = []
        for n in [1_000, 10_000, 100_000, 1_000_000]:
            for h in [8, 64, 512]:
                s, g = choose_s_and_g(n, h)
                lg = max(1, n.bit_length() - 1)
                rows.append((n, h, s, g, g * lg, n // s))
        return rows

    rows = run_once(benchmark, run)
    t = Table(["N", "H", "S", "G", "G·logN", "N/S"],
              title="E9b  Algorithm 2 parameters: G·log N ≤ N/S")
    for r in rows:
        t.add(*r)
    report("e9b_parameters", t)
    for n, h, s, g, glog, ns in rows:
        assert glog <= ns + 1
        assert s >= 3 and g >= 2
