"""Exec-layer benchmark: serial vs ``--jobs 4`` vs warm cache on E1 + E3.

Measures the wall-clock of the E1 (Theorem 1 I/O sweep) and E3 (baseline
comparison) grids through the :mod:`repro.exec` ParallelRunner in three
modes and records the trajectory point in ``BENCH_exec_runner.json`` at
the repo root:

* ``serial`` — in-process execution (the pre-exec-layer behaviour);
* ``jobs=4`` — four worker processes (real speedup scales with the host's
  usable cores; on a single-core host this only measures pool overhead);
* ``warm cache`` — every cell served from the content-hashed result
  cache (the repeated-grid-cell path, independent of core count).

Besides timing, the benchmark asserts the determinism contract: all three
modes must produce **bit-identical rows**.

Run directly (``python benchmarks/bench_exec_runner.py``) or via pytest
(``pytest benchmarks/bench_exec_runner.py -m bench``).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

import pytest

from repro.util import capture_host

sys.path.insert(0, os.path.dirname(__file__))

from _harness import parallel_sweep  # noqa: E402

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_exec_runner.json")


def _grids():
    import bench_e1_pdm_io
    import bench_e3_baselines

    return [
        ("e1", "sort_pdm", bench_e1_pdm_io.GRID),
        ("e3", "compare_pdm", bench_e3_baselines.GRID),
    ]


def measure() -> dict:
    """Time the E1+E3 grids serial / jobs=4 / warm-cache; return the record."""
    grids = _grids()
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        for name, task, grid in grids:
            t0 = time.perf_counter()
            serial = parallel_sweep(task, grid, jobs=0)
            t_serial = time.perf_counter() - t0

            t0 = time.perf_counter()
            par = parallel_sweep(task, grid, jobs=4, cache_dir=cache_dir)
            t_par = time.perf_counter() - t0

            t0 = time.perf_counter()
            warm = parallel_sweep(task, grid, jobs=4, cache_dir=cache_dir)
            t_warm = time.perf_counter() - t0

            assert serial == par == warm, f"{name}: modes disagree on results"
            rows.append(
                {
                    "grid": name,
                    "task": task,
                    "cells": len(grid),
                    "serial_s": round(t_serial, 3),
                    "jobs4_s": round(t_par, 3),
                    "warm_cache_s": round(t_warm, 3),
                    "speedup_jobs4": round(t_serial / t_par, 2),
                    "speedup_warm_cache": round(t_serial / t_warm, 1),
                    "bit_identical": True,
                }
            )
    return {
        "schema": "repro.bench_point/1",
        "name": "exec_runner",
        "description": "E1+E3 grid wall-clock: serial vs ParallelRunner "
                       "--jobs 4 vs warm result cache",
        "host": capture_host(),
        "rows": rows,
        "notes": (
            "Rows are bit-identical across all three modes (asserted). "
            "jobs=4 speedup is bounded by the host's usable cores: on a "
            "single-core host it measures only process-pool overhead; the "
            "warm-cache row is the core-count-independent fast path."
        ),
    }


def record(path: str = BENCH_PATH) -> dict:
    """Measure and persist the benchmark point."""
    point = measure()
    with open(path, "w") as fh:
        json.dump(point, fh, indent=2)
        fh.write("\n")
    return point


@pytest.mark.bench
@pytest.mark.benchmark(group="exec")
def test_exec_runner_modes_bit_identical_and_recorded(benchmark):
    point = benchmark.pedantic(record, rounds=1, iterations=1)
    for row in point["rows"]:
        assert row["bit_identical"]
        # The cache path must beat re-simulation decisively regardless of
        # core count; the jobs=4 path can only be asserted when the host
        # actually has the cores.
        assert row["speedup_warm_cache"] >= 2.0
        if point["host"]["usable_cores"] >= 4:
            assert row["speedup_jobs4"] >= 2.0


if __name__ == "__main__":
    point = record()
    print(json.dumps(point, indent=2))
