"""E6 — Theorem 4 and Invariants 1-2 (the factor-2 balance guarantee).

Paper claims: after every processed track the auxiliary matrix is binary
(Invariant 2), hence ``x_bh ≤ m_b + 1`` and "any bucket b will take no more
than a factor of about 2 above the optimal number of tracks to read"
(Theorem 4).  Reproduction: drive the Balance engine with adversarial
workloads over a grid of (H', S) and measure the worst factor; compare with
the randomized placer's tail.
"""

import numpy as np
import pytest

from repro import workloads
from repro.analysis.reporting import Table
from repro.baselines.randomized_vs import RandomizedPlacer
from repro.core.balance import BalanceEngine
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys

from _harness import report, run_once

WORKLOADS = ["uniform", "adversarial_striping", "adversarial_bucket_skew", "zipf"]
GRID = [(2, 4), (4, 4), (8, 8), (8, 16)]  # (H', S)
N = 12_000


def pivots_for(records, s):
    ck = np.sort(composite_keys(records))
    ranks = np.linspace(0, ck.size - 1, s + 1).astype(int)[1:-1]
    return ck[ranks]


def drive(engine_or_placer, machine, data, hp):
    for i in range(0, data.shape[0], 512):
        part = data[i : i + 512]
        machine.mem_acquire(part.shape[0])
        engine_or_placer.feed(part)
        if isinstance(engine_or_placer, BalanceEngine):
            engine_or_placer.run_rounds(drain_below=2 * hp)
        else:
            engine_or_placer.write_rounds(drain_below=2 * hp)
    engine_or_placer.flush()


def sweep():
    rows = []
    for hp, s in GRID:
        for wl in WORKLOADS:
            data = workloads.by_name(wl, N, seed=8)
            piv = pivots_for(data, s)

            machine = ParallelDiskMachine(memory=65536, block=4, disks=2 * hp)
            storage = VirtualDisks(machine, hp)
            engine = BalanceEngine(storage, piv, matcher="derandomized",
                                   check_invariants=True)
            drive(engine, machine, data, hp)
            det = engine.matrices.max_balance_factor()

            machine2 = ParallelDiskMachine(memory=65536, block=4, disks=2 * hp)
            storage2 = VirtualDisks(machine2, hp)
            placer = RandomizedPlacer(storage2, piv, np.random.default_rng(9))
            drive(placer, machine2, data, hp)
            ran = placer.max_balance_factor()

            rows.append(
                {
                    "H'": hp,
                    "S": s,
                    "workload": wl,
                    "balanced": round(det, 2),
                    "randomized": round(ran, 2),
                    "swaps": engine.stats.blocks_swapped,
                }
            )
    return rows


@pytest.mark.benchmark(group="e6")
def test_e6_theorem4_factor(benchmark):
    rows = run_once(benchmark, sweep)
    t = Table(["H'", "S", "workload", "balanced", "randomized", "swaps"],
              title="E6  worst bucket balance factor (Theorem 4: ≤ ~2)")
    for r in rows:
        t.add_dict(r)
    det_worst = max(r["balanced"] for r in rows)
    ran_worst = max(r["randomized"] for r in rows)
    report("e6_balance_factor", t,
           notes=f"Deterministic worst factor {det_worst} (guarantee ~2); "
                 f"randomized worst {ran_worst} (a tail, not a guarantee).  "
                 "Invariants 1-2 were asserted on every round of every run.")
    # Theorem 4 (with the flush's small additive slack)
    assert det_worst <= 2.5
    # the randomized tail exceeds the deterministic worst case somewhere
    assert ran_worst > det_worst
