"""E5 — Theorem 3 (sorting time on P-BT hierarchies, four f-regimes).

Paper claims: with block transfer the sorting time collapses to
``Θ((N/H)·log N)`` for ``f = log x`` and every ``x^α`` with ``α < 1``
(streaming via the [ACSa] touch pipeline); the ``α = 1`` regime pays
``(N/H)(log²(N/H) + log N)``; ``α > 1`` pays ``(N/H)^α`` — and BT always
beats the corresponding HMM machine for sublinear α.
"""

import pytest

from repro import ParallelHierarchies, balance_sort_hierarchy, workloads
from repro.analysis import bounds
from repro.analysis.reporting import Table
from repro.hierarchies import LogCost, PowerCost

from _harness import report, run_once

H = 64
N_SWEEP = [3_000, 6_000, 12_000, 24_000]
REGIMES = [("log", None), ("x^0.5", 0.5), ("x^1", 1.0), ("x^2", 2.0)]


def sweep():
    rows = []
    for label, alpha in REGIMES:
        cost = LogCost() if alpha is None else PowerCost(alpha=alpha)
        for n in N_SWEEP:
            machine = ParallelHierarchies(H, model="bt", cost_fn=cost, interconnect="pram")
            res = balance_sort_hierarchy(
                machine, workloads.uniform(n, seed=6), check_invariants=False
            )
            bound = bounds.theorem3_bound(n, H, alpha)
            rows.append(
                {
                    "f": label,
                    "N": n,
                    "time": round(res.total_time),
                    "bound": round(bound),
                    "ratio": round(res.total_time / bound, 2),
                }
            )
    return rows


@pytest.mark.benchmark(group="e5")
def test_e5_pbt_time_vs_theorem3(benchmark):
    rows = run_once(benchmark, sweep)
    t = Table(["f", "N", "time", "bound", "ratio"],
              title=f"E5  P-BT sorting time vs Theorem 3, H={H}, EREW PRAM")
    for r in rows:
        t.add_dict(r)
    report("e5_pbt", t,
           notes="Claim: bounded ratio per regime; log and α<1 behave alike "
                 "(touch pipeline), α>1 dominated by (N/H)^α.")
    for label, _ in REGIMES:
        ratios = [r["ratio"] for r in rows if r["f"] == label]
        assert max(ratios) / min(ratios) < 4.0, f"ratio drifts for f={label}"
    # log and x^0.5 regimes cost about the same (same Theorem 3 line)
    t_log = [r["time"] for r in rows if r["f"] == "log"]
    t_half = [r["time"] for r in rows if r["f"] == "x^0.5"]
    for a, b in zip(t_log, t_half):
        assert 0.5 < a / b < 2.0


@pytest.mark.benchmark(group="e5")
def test_e5_bt_beats_hmm_for_sublinear_alpha(benchmark):
    """Section 4.4: block transfer turns x^0.5 access into ~loglog streaming."""

    def run():
        out = []
        for n in [6_000, 24_000]:
            data = workloads.uniform(n, seed=7)
            hmm = ParallelHierarchies(H, model="hmm", cost_fn=PowerCost(alpha=0.5))
            bt = ParallelHierarchies(H, model="bt", cost_fn=PowerCost(alpha=0.5))
            t_hmm = balance_sort_hierarchy(hmm, data, check_invariants=False).memory_time
            t_bt = balance_sort_hierarchy(bt, data, check_invariants=False).memory_time
            out.append((n, t_hmm, t_bt, t_hmm / t_bt))
        return out

    rows = run_once(benchmark, run)
    t = Table(["N", "P-HMM memory time", "P-BT memory time", "speedup"],
              title="E5b  block transfer advantage at f = x^0.5")
    for n, a, b, s in rows:
        t.add(n, round(a), round(b), round(s, 2))
    report("e5b_bt_vs_hmm", t,
           notes="Claim: BT wins, and the gap widens with N "
                 "(x^0.5 vs log log x per streamed record).")
    assert all(s > 1.0 for *_, s in rows)
    assert rows[1][3] > rows[0][3]  # gap widens with N
