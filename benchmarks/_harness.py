"""Shared helpers for the experiment benchmarks (E1-E10).

Each bench file reproduces one entry of DESIGN.md §5's experiment index:
it sweeps the workload/parameters, prints an aligned table of
measured-vs-bound rows (run pytest with ``-s`` to see it live), writes the
same table under ``benchmarks/results/``, and asserts the paper's
qualitative claim (who wins, bounded ratio, factor ≈ 2, ...).  The
``benchmark`` fixture wraps the sweep so ``pytest benchmarks/
--benchmark-only`` also reports wall-clock for the simulation itself.
"""

from __future__ import annotations

import json
import os

from repro.analysis.reporting import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, table: Table, notes: str = "") -> str:
    """Print a result table and persist it under benchmarks/results/.

    Writes two files per experiment: the aligned-text table
    (``results/{name}.txt``, unchanged format) and a machine-readable
    sidecar (``results/{name}.json``) carrying the same rows plus the
    notes and the normalized host metadata
    (:func:`repro.util.capture_host`), so downstream tooling never has to
    parse the text table and diff gates can ignore ``host.*`` wholesale.
    """
    from repro import __version__
    from repro.util import capture_host

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = table.render()
    if notes:
        text += "\n\n" + notes.strip()
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    sidecar = {
        "schema": "repro.bench_result/1",
        "repro_version": __version__,
        "name": name,
        "host": capture_host(),
        **table.to_dict(),
        "notes": notes.strip(),
    }
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(sidecar, fh, indent=2)
        fh.write("\n")
    print("\n" + text + "\n")
    return text


def run_once(benchmark, fn):
    """Run a sweep exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def parallel_sweep(task, cells, jobs=None, cache_dir=None):
    """Run a benchmark grid through the :mod:`repro.exec` ParallelRunner.

    ``cells`` is a list of task-parameter dicts (one per grid cell);
    returns the per-cell ``result`` summaries **in cell order**, so
    benchmark tables built from them are bit-identical whether the grid
    ran serially, across a process pool, or from cache.

    Sharding/caching default to the environment so CI and local runs can
    opt in without touching the bench files:

    * ``REPRO_BENCH_JOBS`` — worker processes (unset/0/1 = serial);
    * ``REPRO_BENCH_CACHE`` — result-cache directory (unset = no cache).
    """
    from repro.exec import ParallelRunner, RunSpec

    if jobs is None:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0)
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    results = runner.map([RunSpec(task, dict(cell)) for cell in cells])
    return [r.result for r in results]


def random_valid_instance(rng, hp):
    """A random matching instance satisfying the Invariant-1 degree bound.

    (Mirrors the generator used by the unit tests: |U| ≤ ⌊H'/2⌋ overloaded
    channels, each adjacent to ≥ ⌈H'/2⌉ of the H' channels.)
    """
    import numpy as np

    from repro.core.matching import MatchingInstance

    k = rng.integers(1, max(2, hp // 2 + 1))
    need = (hp + 1) // 2
    adj = np.zeros((k, hp), dtype=bool)
    for i in range(k):
        deg = rng.integers(need, hp + 1)
        cols = rng.choice(hp, size=deg, replace=False)
        adj[i, cols] = True
    return MatchingInstance(
        u_channels=tuple(range(k)),
        buckets=tuple(range(k)),
        adjacency=adj,
        n_channels=hp,
    )
