"""E1 — Theorem 1 (I/O optimality on the parallel disk model).

Paper claim: Balance Sort sorts N records with
``Θ((N/DB)·log(N/B)/log(M/B))`` parallel I/Os, deterministically, matching
the [AgV] lower bound.  Reproduction: sweep N over decades and D over the
grid; the measured-I/O / bound ratio must sit in a constant band (flat in
N), for every D.
"""

import pytest

from repro.analysis.optimality import loglog_slope
from repro.analysis.reporting import Table

from _harness import parallel_sweep, report, run_once

N_SWEEP = [4_000, 16_000, 64_000]
D_SWEEP = [4, 8, 16]
M, B = 512, 4

#: The E1 grid as exec-task cells (one ``sort_pdm`` run per cell).
GRID = [
    {"n": n, "memory": M, "block": B, "disks": d, "workload": "uniform", "seed": 1}
    for d in D_SWEEP
    for n in N_SWEEP
]


def sweep(jobs=None, cache_dir=None):
    results = parallel_sweep("sort_pdm", GRID, jobs=jobs, cache_dir=cache_dir)
    rows = []
    for cell, res in zip(GRID, results):
        rows.append(
            {
                "N": cell["n"],
                "D": cell["disks"],
                "ios": res["parallel_ios"],
                "bound": res["theorem1_bound"],
                "ratio": round(res["ratio"], 2),
                "depth": res["recursion_depth"],
                "balance": round(res["balance_factor"], 2),
            }
        )
    return rows


@pytest.mark.benchmark(group="e1")
def test_e1_io_vs_theorem1_bound(benchmark):
    rows = run_once(benchmark, sweep)

    t = Table(["N", "D", "ios", "bound", "ratio", "depth", "balance"],
              title="E1  Balance Sort parallel I/Os vs Theorem 1 bound")
    for r in rows:
        t.add_dict(r)
    report("e1_pdm_io", t,
           notes="Claim: ratio stays in a constant band as N grows (per D); "
                 "balance factor ≈ Theorem 4's 2.")

    for d in D_SWEEP:
        ratios = [r["ratio"] for r in rows if r["D"] == d]
        assert max(ratios) / min(ratios) < 2.0, f"ratio drifts for D={d}"
        assert max(ratios) < 16
    # measured I/Os grow with the same exponent as the bound (log-log fit)
    for d in D_SWEEP:
        sub = [r for r in rows if r["D"] == d]
        slope_m = loglog_slope([r["N"] for r in sub], [r["ios"] for r in sub])
        slope_b = loglog_slope([r["N"] for r in sub], [r["bound"] for r in sub])
        assert abs(slope_m - slope_b) < 0.25
    # every run balanced within the deterministic guarantee
    assert max(r["balance"] for r in rows) <= 2.5
