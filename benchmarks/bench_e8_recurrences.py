"""E8 — Lemmas 2-4 (the recurrence solutions, via growth-exponent fits).

Paper claims: the recurrences of Sections 4.3-4.4 solve to the closed
forms of Lemmas 2-4 (and the Section 5 I/O recurrence to Theorem 1's
bound).  Reproduction: fit the log-log growth exponent of the measured
costs over an N sweep and compare with the bound's exponent — matching
slopes mean the recurrence solution has the right polynomial order.
"""

import pytest

from repro import (
    ParallelDiskMachine,
    ParallelHierarchies,
    balance_sort_hierarchy,
    balance_sort_pdm,
    workloads,
)
from repro.analysis import bounds
from repro.analysis.optimality import loglog_slope
from repro.analysis.reporting import Table
from repro.hierarchies import LogCost, PowerCost

from _harness import report, run_once

N_SWEEP = [3_000, 6_000, 12_000, 24_000, 48_000]
H = 64


def sweep():
    series = []

    # Section 5 recurrence: T(N) = S·T(N/S) + O(N/DB) -> Theorem 1 bound
    ios = []
    for n in N_SWEEP:
        m = ParallelDiskMachine(memory=512, block=4, disks=8)
        ios.append(
            balance_sort_pdm(m, workloads.uniform(n, seed=11), check_invariants=False).total_ios
        )
    series.append(("PDM I/Os", ios, [bounds.sort_io_bound(n, 512, 4, 8) for n in N_SWEEP]))

    # Lemma 2 (P-HMM, f = log x)
    times = []
    for n in N_SWEEP:
        m = ParallelHierarchies(H, cost_fn=LogCost())
        times.append(
            balance_sort_hierarchy(m, workloads.uniform(n, seed=12), check_invariants=False).total_time
        )
    series.append(("P-HMM f=log", times, [bounds.theorem2_log_bound(n, H) for n in N_SWEEP]))

    # Lemma 3 (P-HMM, f = x^1)
    times = []
    for n in N_SWEEP:
        m = ParallelHierarchies(H, cost_fn=PowerCost(alpha=1.0))
        times.append(
            balance_sort_hierarchy(m, workloads.uniform(n, seed=13), check_invariants=False).total_time
        )
    series.append(
        ("P-HMM f=x^1", times, [bounds.theorem2_power_bound(n, H, 1.0) for n in N_SWEEP])
    )

    # Lemma 4 (P-BT, f = x^0.5 -> (N/H) log N)
    times = []
    for n in N_SWEEP:
        m = ParallelHierarchies(H, model="bt", cost_fn=PowerCost(alpha=0.5))
        times.append(
            balance_sort_hierarchy(m, workloads.uniform(n, seed=14), check_invariants=False).total_time
        )
    series.append(("P-BT f=x^0.5", times, [bounds.theorem3_bound(n, H, 0.5) for n in N_SWEEP]))
    return series


@pytest.mark.benchmark(group="e8")
def test_e8_recurrence_growth_exponents(benchmark):
    series = run_once(benchmark, sweep)
    t = Table(["recurrence", "measured slope", "bound slope", "delta"],
              title="E8  log-log growth exponents: measured vs Lemmas 2-4")
    deltas = []
    for name, measured, bound in series:
        sm = loglog_slope(N_SWEEP, measured)
        sb = loglog_slope(N_SWEEP, bound)
        deltas.append(abs(sm - sb))
        t.add(name, round(sm, 3), round(sb, 3), round(sm - sb, 3))
    report("e8_recurrences", t,
           notes="Claim: each measured growth exponent matches its lemma's "
                 "closed form (|delta| small).")
    for name_delta, d in zip(series, deltas):
        assert d < 0.3, f"slope mismatch for {name_delta[0]}: {d}"
