"""E3 — the Section 1 comparison: Balance Sort vs the prior art.

Paper claims reproduced here:

* **striped merge sort** is deterministic but suboptimal "by a
  multiplicative factor of log(M/B)": as ``DB`` approaches ``M`` its
  ratio-to-bound grows, while the independent-disk algorithms stay flat —
  the crossover the benchmark locates;
* **randomized [ViSa]** and **Greed Sort [NoV]** match Balance Sort's I/O
  order (all three are optimal on the PDM);
* Balance Sort achieves this *deterministically* (same I/O count on every
  run, no expectation).
"""

import pytest

from repro import ParallelDiskMachine, balance_sort_pdm, workloads
from repro.analysis.reporting import Table
from repro.baselines import randomized_distribution_sort

from _harness import parallel_sweep, report, run_once

# Sweep the striping width DB toward M (=512): fan-in collapses for the
# striped baseline only.  The third element is Balance Sort's D' (partial
# striping): with DB near M the S partial blocks of DB/D' records need
# D' ≥ 2·S·DB/M to fit in memory, so wide configs get more virtual disks.
CONFIGS = [
    # (D, B, D')  -> DB:   8     32    64    128
    (2, 4, None),
    (8, 4, None),
    (32, 2, 8),
    (64, 2, 32),
]
N = 48_000
M = 512
# Bucket count for Balance Sort in this head-to-head: S = sqrt(M/B), the
# [ViSa] practical choice.  The paper's S = (M/B)^(1/4) (used in E1) is
# what the simultaneous-CPU-optimality proof wants; both are Θ-optimal in
# I/Os, differing only in the constant (4 vs 2 recursion levels here).
S_E3 = 16

ALG_NAMES = ["balance", "greed", "randomized", "striped"]

#: The E3 grid as exec-task cells (one ``compare_pdm`` run per cell).
GRID = []
for _d, _b, _vd in CONFIGS:
    for _alg in ALG_NAMES:
        cell = {
            "algorithm": _alg, "n": N, "memory": M, "block": _b, "disks": _d,
            "workload": "uniform", "seed": 3,
        }
        if _alg == "balance":
            cell["buckets"] = S_E3
            if _vd is not None:
                cell["virtual_disks"] = _vd
        GRID.append(cell)


def sweep(jobs=None, cache_dir=None):
    results = parallel_sweep("compare_pdm", GRID, jobs=jobs, cache_dir=cache_dir)
    rows = []
    for cell, res in zip(GRID, results):
        rows.append(
            {
                "alg": res["algorithm"],
                "D": cell["disks"],
                "B": cell["block"],
                "DB": cell["disks"] * cell["block"],
                "ios": res["parallel_ios"],
                "ratio": round(res["ratio"], 2),
            }
        )
    return rows


@pytest.mark.benchmark(group="e3")
def test_e3_baseline_comparison(benchmark):
    rows = run_once(benchmark, sweep)

    t = Table(["alg", "D", "B", "DB", "ios", "ratio"],
              title=f"E3  I/O ratio to the Theorem 1 bound, N={N}, M={M}")
    for r in sorted(rows, key=lambda r: (r["alg"], r["DB"])):
        t.add_dict(r)

    def ratios(alg):
        return [r["ratio"] for r in rows if r["alg"] == alg]

    striped = ratios("striped")
    balance = ratios("balance")
    greed = ratios("greed")
    rand = ratios("randomized")

    crossover = next(
        (
            f"DB={d * b}"
            for (d, b, _), rs, rb in zip(CONFIGS, striped, balance)
            if rs > rb
        ),
        "none in sweep",
    )
    report(
        "e3_baselines", t,
        notes=(
            "Claims: striped ratio grows as DB→M (the log(M/B)-factor gap); "
            "balance/greed/randomized stay in constant bands.  "
            f"Striped-vs-balance crossover at {crossover}."
        ),
    )

    # striped merge sort's ratio grows across the DB sweep...
    assert striped[-1] > 2.5 * striped[0]
    # ...while the distribution sorts stay within constant bands
    for rs in (balance, rand):
        assert max(rs) / min(rs) < 2.5
    # greed is optimal-order too, though its constant moves with D
    # (fan-in vs disk-count interplay); it must stay bounded
    assert max(greed) < 16
    # at the widest striping the deterministic distribution sort wins
    assert striped[-1] > balance[-1]


@pytest.mark.benchmark(group="e3")
def test_e3_determinism_vs_randomized_variance(benchmark):
    """Balance Sort's I/O count is a constant; the randomized baseline's varies."""

    def run():
        import numpy as np

        data = workloads.uniform(8_000, seed=4)
        det = []
        ran = []
        for trial in range(3):
            m1 = ParallelDiskMachine(memory=M, block=4, disks=8)
            det.append(balance_sort_pdm(m1, data, check_invariants=False).total_ios)
            m2 = ParallelDiskMachine(memory=M, block=4, disks=8)
            ran.append(
                randomized_distribution_sort(
                    m2, data, rng=np.random.default_rng(trial)
                ).total_ios
            )
        return det, ran

    det, ran = run_once(benchmark, run)
    t = Table(["trial", "balance (deterministic)", "randomized [ViSa]"],
              title="E3b  run-to-run I/O counts")
    for i, (a, b) in enumerate(zip(det, ran)):
        t.add(i, a, b)
    report("e3b_determinism", t,
           notes="Claim: the deterministic algorithm's count never varies.")
    assert len(set(det)) == 1
    assert len(set(ran)) > 1
