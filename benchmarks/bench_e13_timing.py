"""E13 — the Section 1 motivation, quantified (blocking and parallel disks).

Paper: "This blocking takes advantage of the fact that the seek time is
usually much longer than the time needed to transfer a record of data once
the disk read/write head is in place.  An increasingly popular way to get
further speedup is to use many disk drives working in parallel."

Reproduction: (a) the blocking advantage — B-record blocks vs B unblocked
transfers — on period hardware profiles; (b) converting the E3 I/O counts
into estimated wall-clock on a 1993 disk array, where the I/O-count
differences the theorems talk about become minutes.
"""

import pytest

from repro import ParallelDiskMachine, balance_sort_pdm, workloads
from repro.analysis.reporting import Table
from repro.baselines import striped_merge_sort
from repro.pdm import DISK_1993, DISK_MODERN_HDD, DISK_NVME

from _harness import report, run_once

PROFILES = [DISK_1993, DISK_MODERN_HDD, DISK_NVME]


@pytest.mark.benchmark(group="e13")
def test_e13_blocking_advantage(benchmark):
    def run():
        rows = []
        for profile in PROFILES:
            for b in [16, 256, 4096]:
                rows.append(
                    {
                        "profile": profile.name,
                        "B (records)": b,
                        "io_ms(B)": round(profile.io_ms(b), 3),
                        "blocking speedup": round(profile.blocking_advantage(b), 1),
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    t = Table(["profile", "B (records)", "io_ms(B)", "blocking speedup"],
              title="E13a  blocked vs unblocked transfer (Section 1's motivation)")
    for r in rows:
        t.add_dict(r)
    report("e13a_blocking", t,
           notes="Claim: positioning dominates a record transfer on every "
                 "profile, so blocked access wins by orders of magnitude; "
                 "the speedup grows with B until transfer dominates.")
    for profile in PROFILES:
        speedups = [r["blocking speedup"] for r in rows if r["profile"] == profile.name]
        assert speedups == sorted(speedups)  # grows with B
        assert speedups[-1] > 50


@pytest.mark.benchmark(group="e13")
def test_e13_wall_clock_projection(benchmark):
    """I/O-count gaps become wall-clock on period hardware."""

    def run():
        n = 24_000
        data = workloads.uniform(n, seed=26)
        rows = []
        for name, fn in [
            ("balance", lambda m: balance_sort_pdm(
                m, data, buckets=16, virtual_disks=32, check_invariants=False)),
            ("striped merge", lambda m: striped_merge_sort(m, data)),
        ]:
            machine = ParallelDiskMachine(memory=512, block=2, disks=64)
            res = fn(machine)
            rows.append(
                {
                    "algorithm": name,
                    "parallel I/Os": res.total_ios,
                    "1993 array (s)": round(DISK_1993.estimate_seconds(machine.stats, 2), 1),
                    "modern HDD (s)": round(
                        DISK_MODERN_HDD.estimate_seconds(machine.stats, 2), 1
                    ),
                    "NVMe (ms)": round(
                        DISK_NVME.estimate_seconds(machine.stats, 2) * 1e3, 1
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    t = Table(["algorithm", "parallel I/Os", "1993 array (s)", "modern HDD (s)", "NVMe (ms)"],
              title="E13b  estimated wall-clock at DB = M/4 (wide striping)")
    for r in rows:
        t.add_dict(r)
    report("e13b_wall_clock", t,
           notes="The Theorem 1 I/O gap at wide striping, in seconds: the "
                 "count ratio carries through every profile (time = count × "
                 "per-I/O constant in the positional model).")
    assert rows[0]["parallel I/Os"] < rows[1]["parallel I/Os"]
    assert rows[0]["1993 array (s)"] < rows[1]["1993 array (s)"]
