"""Setuptools shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml.  Modern pips build editable installs
through PEP 517, which requires ``wheel``; on an offline machine without it,
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to the
legacy ``setup.py develop`` path this file enables.
"""

from setuptools import setup

setup()
