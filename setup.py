"""Setuptools shim: legacy-path installs plus the optional C extension.

All metadata lives in pyproject.toml.  Modern pips build editable installs
through PEP 517, which requires ``wheel``; on an offline machine without it,
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to the
legacy ``setup.py develop`` path this file enables.

The ``repro._speedups`` extension is **optional**: it backs the
``"compiled"`` kernel backend (see ``repro.core.kernels``), and every
import site falls back to the pure-Python reference when it is absent.
``Extension(optional=True)`` turns any compiler failure into a warning,
so source installs succeed on toolchain-less machines.  Build it in
place for a checkout with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro._speedups",
            sources=["src/repro/_speedups.c"],
            optional=True,
        )
    ]
)
